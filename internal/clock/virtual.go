package clock

import (
	"container/heap"
	"fmt"
	"sync"
	"time"
)

// Virtual is a deterministic discrete-event clock. Events scheduled
// with AfterFunc fire in (time, insertion-order) order when the owner
// calls Run, RunFor, RunUntilIdle, or Step. Callbacks run on the
// goroutine that drives the clock; they may schedule further events.
//
// Virtual is safe for concurrent use, but deterministic execution is
// only guaranteed when a single goroutine drives it, which is how every
// experiment in this repository runs.
type Virtual struct {
	mu    sync.Mutex
	now   time.Time
	seq   uint64
	queue eventHeap
	// fired counts callbacks executed, for diagnostics and tests.
	fired uint64
}

type event struct {
	at      time.Time
	seq     uint64
	fn      func()
	stopped bool
	index   int
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// NewVirtual returns a Virtual clock whose current time is start.
func NewVirtual(start time.Time) *Virtual {
	return &Virtual{now: start}
}

// Now returns the clock's current virtual time.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// AfterFunc schedules f at Now()+d. Negative d is treated as zero.
func (v *Virtual) AfterFunc(d time.Duration, f func()) *Timer {
	if f == nil {
		panic("clock: AfterFunc with nil callback")
	}
	if d < 0 {
		d = 0
	}
	v.mu.Lock()
	e := &event{at: v.now.Add(d), seq: v.seq, fn: f}
	v.seq++
	heap.Push(&v.queue, e)
	v.mu.Unlock()
	return &Timer{stop: func() bool {
		v.mu.Lock()
		defer v.mu.Unlock()
		if e.stopped || e.index < 0 {
			return false
		}
		e.stopped = true
		heap.Remove(&v.queue, e.index)
		e.index = -1
		return true
	}}
}

// Len returns the number of pending events.
func (v *Virtual) Len() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.queue.Len()
}

// Fired returns the number of callbacks executed so far.
func (v *Virtual) Fired() uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.fired
}

// Step executes the single earliest pending event, advancing the clock
// to its timestamp. It reports whether an event was executed.
func (v *Virtual) Step() bool {
	v.mu.Lock()
	if v.queue.Len() == 0 {
		v.mu.Unlock()
		return false
	}
	e := heap.Pop(&v.queue).(*event)
	e.index = -1
	if e.at.After(v.now) {
		v.now = e.at
	}
	v.fired++
	v.mu.Unlock()
	e.fn()
	return true
}

// Run executes events in order until the clock reaches deadline. Events
// scheduled exactly at the deadline are executed; the clock's time is
// set to deadline when Run returns. It returns the number of events
// executed.
func (v *Virtual) Run(deadline time.Time) int {
	n := 0
	for {
		v.mu.Lock()
		if v.queue.Len() == 0 || v.queue[0].at.After(deadline) {
			if deadline.After(v.now) {
				v.now = deadline
			}
			v.mu.Unlock()
			return n
		}
		e := heap.Pop(&v.queue).(*event)
		e.index = -1
		if e.at.After(v.now) {
			v.now = e.at
		}
		v.fired++
		v.mu.Unlock()
		e.fn()
		n++
	}
}

// RunFor runs events for a virtual duration d from the current time.
func (v *Virtual) RunFor(d time.Duration) int {
	return v.Run(v.Now().Add(d))
}

// RunUntilIdle executes events until the queue is empty or maxEvents
// callbacks have run. It returns the number executed. A maxEvents cap
// guards against runaway self-rescheduling loops in tests.
func (v *Virtual) RunUntilIdle(maxEvents int) int {
	n := 0
	for n < maxEvents && v.Step() {
		n++
	}
	return n
}

// String describes the clock state, for debugging.
func (v *Virtual) String() string {
	v.mu.Lock()
	defer v.mu.Unlock()
	return fmt.Sprintf("virtual clock at %s, %d pending, %d fired",
		v.now.Format(time.RFC3339Nano), v.queue.Len(), v.fired)
}
