package clock

import (
	"testing"
	"testing/quick"
	"time"
)

var epoch = time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)

func TestVirtualNow(t *testing.T) {
	v := NewVirtual(epoch)
	if !v.Now().Equal(epoch) {
		t.Fatalf("Now() = %v, want %v", v.Now(), epoch)
	}
}

func TestVirtualOrdering(t *testing.T) {
	v := NewVirtual(epoch)
	var got []int
	v.AfterFunc(30*time.Millisecond, func() { got = append(got, 3) })
	v.AfterFunc(10*time.Millisecond, func() { got = append(got, 1) })
	v.AfterFunc(20*time.Millisecond, func() { got = append(got, 2) })
	v.Run(epoch.Add(time.Second))
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("execution order %v, want %v", got, want)
		}
	}
}

func TestVirtualSameTimeFIFO(t *testing.T) {
	v := NewVirtual(epoch)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		v.AfterFunc(time.Millisecond, func() { got = append(got, i) })
	}
	v.RunFor(time.Millisecond)
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-timestamp events not FIFO: %v", got)
		}
	}
}

func TestVirtualAdvancesToEventTime(t *testing.T) {
	v := NewVirtual(epoch)
	var at time.Time
	v.AfterFunc(42*time.Millisecond, func() { at = v.Now() })
	v.Run(epoch.Add(time.Second))
	if want := epoch.Add(42 * time.Millisecond); !at.Equal(want) {
		t.Fatalf("callback saw Now()=%v, want %v", at, want)
	}
	if !v.Now().Equal(epoch.Add(time.Second)) {
		t.Fatalf("after Run, Now()=%v, want deadline", v.Now())
	}
}

func TestVirtualDeadlineInclusive(t *testing.T) {
	v := NewVirtual(epoch)
	fired := false
	v.AfterFunc(time.Second, func() { fired = true })
	v.Run(epoch.Add(time.Second))
	if !fired {
		t.Fatal("event at exactly the deadline did not fire")
	}
}

func TestVirtualReschedulingCallback(t *testing.T) {
	v := NewVirtual(epoch)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			v.AfterFunc(10*time.Millisecond, tick)
		}
	}
	v.AfterFunc(10*time.Millisecond, tick)
	v.RunFor(time.Second)
	if count != 5 {
		t.Fatalf("rescheduling callback ran %d times, want 5", count)
	}
}

func TestTimerStop(t *testing.T) {
	v := NewVirtual(epoch)
	fired := false
	tm := v.AfterFunc(time.Millisecond, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("first Stop() = false, want true")
	}
	if tm.Stop() {
		t.Fatal("second Stop() = true, want false")
	}
	v.RunFor(time.Second)
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	v := NewVirtual(epoch)
	tm := v.AfterFunc(time.Millisecond, func() {})
	v.RunFor(time.Second)
	if tm.Stop() {
		t.Fatal("Stop() after firing = true, want false")
	}
}

func TestTimerStopNil(t *testing.T) {
	var tm *Timer
	if tm.Stop() {
		t.Fatal("nil Timer Stop() = true")
	}
}

func TestVirtualNegativeDelay(t *testing.T) {
	v := NewVirtual(epoch)
	fired := false
	v.AfterFunc(-time.Second, func() { fired = true })
	if !v.Step() || !fired {
		t.Fatal("negative-delay event did not fire immediately")
	}
	if !v.Now().Equal(epoch) {
		t.Fatalf("negative delay moved clock to %v", v.Now())
	}
}

func TestVirtualStepEmpty(t *testing.T) {
	v := NewVirtual(epoch)
	if v.Step() {
		t.Fatal("Step() on empty queue = true")
	}
}

func TestVirtualRunUntilIdleCap(t *testing.T) {
	v := NewVirtual(epoch)
	var tick func()
	tick = func() { v.AfterFunc(time.Millisecond, tick) }
	v.AfterFunc(0, tick)
	n := v.RunUntilIdle(100)
	if n != 100 {
		t.Fatalf("RunUntilIdle executed %d events, want cap of 100", n)
	}
}

func TestVirtualLenAndFired(t *testing.T) {
	v := NewVirtual(epoch)
	v.AfterFunc(time.Millisecond, func() {})
	v.AfterFunc(2*time.Millisecond, func() {})
	if v.Len() != 2 {
		t.Fatalf("Len() = %d, want 2", v.Len())
	}
	v.RunFor(time.Second)
	if v.Len() != 0 {
		t.Fatalf("Len() after run = %d, want 0", v.Len())
	}
	if v.Fired() != 2 {
		t.Fatalf("Fired() = %d, want 2", v.Fired())
	}
}

func TestVirtualRunReturnsCount(t *testing.T) {
	v := NewVirtual(epoch)
	for i := 0; i < 7; i++ {
		v.AfterFunc(time.Duration(i)*time.Millisecond, func() {})
	}
	if n := v.RunFor(time.Second); n != 7 {
		t.Fatalf("Run returned %d, want 7", n)
	}
}

// Property: for any set of non-negative delays, events fire in
// non-decreasing timestamp order.
func TestVirtualOrderProperty(t *testing.T) {
	prop := func(delays []uint16) bool {
		v := NewVirtual(epoch)
		var times []time.Time
		for _, d := range delays {
			v.AfterFunc(time.Duration(d)*time.Microsecond, func() {
				times = append(times, v.Now())
			})
		}
		v.RunFor(time.Second)
		if len(times) != len(delays) {
			return false
		}
		for i := 1; i < len(times); i++ {
			if times[i].Before(times[i-1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the clock never runs past the deadline, regardless of the
// schedule of events.
func TestVirtualDeadlineProperty(t *testing.T) {
	prop := func(delays []uint16, horizon uint16) bool {
		v := NewVirtual(epoch)
		deadline := epoch.Add(time.Duration(horizon) * time.Microsecond)
		ok := true
		for _, d := range delays {
			v.AfterFunc(time.Duration(d)*time.Microsecond, func() {
				if v.Now().After(deadline) {
					ok = false
				}
			})
		}
		v.Run(deadline)
		return ok && v.Now().Equal(deadline)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRealClock(t *testing.T) {
	r := NewReal()
	before := time.Now()
	now := r.Now()
	if now.Before(before.Add(-time.Second)) {
		t.Fatalf("Real.Now() = %v far before time.Now()", now)
	}
	done := make(chan struct{})
	r.AfterFunc(time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Real.AfterFunc callback never fired")
	}
}

func TestRealTimerStop(t *testing.T) {
	r := NewReal()
	tm := r.AfterFunc(time.Hour, func() { t.Error("should not fire") })
	if !tm.Stop() {
		t.Fatal("Stop() on pending real timer = false")
	}
}

func TestVirtualAfterFuncNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AfterFunc(nil) did not panic")
		}
	}()
	NewVirtual(epoch).AfterFunc(time.Second, nil)
}
