// Package clock provides the time abstraction that the SOL runtime and
// the node simulator are built on.
//
// Two implementations are provided. Virtual is a deterministic
// discrete-event clock: callbacks scheduled with AfterFunc or Tick
// execute in timestamp order when the owner calls Run or Step, and time
// advances instantaneously between events. Real delegates to the wall
// clock and the time package. The SOL runtime is written against the
// Clock interface only, so the exact same agent code runs
// deterministically in simulation and in real time on a node.
//
// The scheduling surface is built for steady-state zero allocation:
// a periodic loop is one Tick call (one timer, one closure, reused for
// the life of the ticker), and an irregular loop is one AfterFunc plus
// Timer.Reset per re-arm — neither allocates after setup.
package clock

import (
	"sync"
	"sync/atomic"
	"time"
)

// Clock is the minimal scheduling surface the SOL runtime needs:
// reading the current time and scheduling callbacks.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// AfterFunc schedules f to run at Now()+d. If d <= 0 the callback
	// runs at the current time (virtual) or as soon as possible (real).
	// The returned Timer can cancel the callback with Stop or re-arm it
	// with Reset.
	AfterFunc(d time.Duration, f func()) *Timer
	// Tick schedules f to run every d, first at Now()+d. The ticker
	// re-arms itself after each callback without allocating; the period
	// is measured from the previous scheduled fire time, so ticks do
	// not drift. Stop cancels it; Reset(d2) reschedules the next fire
	// at Now()+d2 and makes d2 the new period. d must be positive.
	Tick(d time.Duration, f func()) *Timer
}

// Timer is a handle to a scheduled callback, one-shot (AfterFunc) or
// periodic (Tick). A Timer is backed either by an event on a Virtual
// clock's heap or by a time.Timer on the wall clock.
type Timer struct {
	// Virtual backing: e lives in (at most) one slot of v's event heap.
	v *Virtual
	e event

	// Real backing.
	rmu     sync.Mutex // guards rt/rnext for ticker re-arm
	rt      *time.Timer
	rperiod time.Duration // ticker period; 0 for one-shot
	rnext   time.Time     //sollint:allow clockhygiene real-backed ticker re-arm needs the wall-clock fire time
	rstop   atomic.Bool   // suppresses ticker re-arm after Stop
}

// Stop cancels the pending callback (and, for tickers, all future
// ones). It reports whether the call prevented a pending callback from
// firing; it returns false if the callback already ran or the timer was
// already stopped. Stopping a ticker from inside its own callback
// returns false but still prevents every later tick.
func (t *Timer) Stop() bool {
	if t == nil {
		return false
	}
	if t.v != nil {
		return t.v.stopTimer(t)
	}
	if t.rt != nil {
		t.rstop.Store(true)
		t.rmu.Lock()
		defer t.rmu.Unlock()
		return t.rt.Stop()
	}
	return false
}

// Reset re-arms the timer to fire at Now()+d, whether it is pending,
// already fired, or stopped, reusing the existing callback and (on a
// virtual clock) the existing heap entry — no allocation. For tickers a
// positive d also becomes the new period. It reports whether the timer
// was still pending. A re-armed event counts as a fresh insertion for
// the clock's (time, insertion-order) execution order.
func (t *Timer) Reset(d time.Duration) bool {
	if t == nil {
		return false
	}
	if t.v != nil {
		return t.v.resetTimer(t, d)
	}
	if t.rt != nil {
		t.rstop.Store(false)
		t.rmu.Lock()
		defer t.rmu.Unlock()
		if t.rperiod > 0 {
			if d > 0 {
				t.rperiod = d
			}
			t.rnext = time.Now().Add(d)
		}
		return t.rt.Reset(d)
	}
	return false
}
