// Package clock provides the time abstraction that the SOL runtime and
// the node simulator are built on.
//
// Two implementations are provided. Virtual is a deterministic
// discrete-event clock: callbacks scheduled with AfterFunc execute in
// timestamp order when the owner calls Run or Step, and time advances
// instantaneously between events. Real delegates to the wall clock and
// the time package. The SOL runtime is written against the Clock
// interface only, so the exact same agent code runs deterministically
// in simulation and in real time on a node.
package clock

import "time"

// Clock is the minimal scheduling surface the SOL runtime needs:
// reading the current time and scheduling a callback.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// AfterFunc schedules f to run at Now()+d. If d <= 0 the callback
	// runs at the current time (virtual) or as soon as possible (real).
	// The returned Timer can cancel the callback before it fires.
	AfterFunc(d time.Duration, f func()) *Timer
}

// Timer is a handle to a scheduled callback.
type Timer struct {
	stop func() bool
}

// Stop cancels the pending callback. It reports whether the call
// prevented the callback from firing; it returns false if the callback
// already ran or was already stopped.
func (t *Timer) Stop() bool {
	if t == nil || t.stop == nil {
		return false
	}
	s := t.stop
	t.stop = nil
	return s()
}
