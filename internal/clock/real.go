package clock

import "time"

// Real is a Clock backed by the wall clock. Callbacks run on their own
// goroutines, exactly as with time.AfterFunc. It is the clock used by
// cmd/solagent when running against a live node.
type Real struct{}

// NewReal returns the wall-clock Clock.
func NewReal() *Real { return &Real{} }

// Now returns the current wall-clock time.
func (*Real) Now() time.Time { return time.Now() }

// AfterFunc schedules f on the wall clock via time.AfterFunc.
func (*Real) AfterFunc(d time.Duration, f func()) *Timer {
	if f == nil {
		panic("clock: AfterFunc with nil callback")
	}
	return &Timer{rt: time.AfterFunc(d, f)}
}

// Tick schedules f every d on the wall clock, re-arming one underlying
// time.Timer after each callback. It honors the interface's drift-free
// contract: each re-arm targets the previous scheduled fire time plus
// the period, so callback latency does not accumulate (a callback
// slower than the period makes the next tick fire immediately, catching
// up — the wall-clock analogue of the virtual ticker firing at every
// grid point). As with time.AfterFunc, callbacks run on their own
// goroutines; Stop prevents all future ticks but may not interrupt one
// already in flight.
func (*Real) Tick(d time.Duration, f func()) *Timer {
	if f == nil {
		panic("clock: Tick with nil callback")
	}
	if d <= 0 {
		panic("clock: Tick with non-positive interval")
	}
	t := &Timer{rperiod: d}
	// The callback re-arms through t.rt; hold rmu across creation so a
	// near-immediate first fire cannot observe t.rt unassigned.
	t.rmu.Lock()
	t.rnext = time.Now().Add(d)
	t.rt = time.AfterFunc(d, func() {
		if t.rstop.Load() {
			return
		}
		f()
		t.rmu.Lock()
		if !t.rstop.Load() {
			t.rnext = t.rnext.Add(t.rperiod)
			t.rt.Reset(time.Until(t.rnext))
		}
		t.rmu.Unlock()
	})
	t.rmu.Unlock()
	return t
}
