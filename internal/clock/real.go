package clock

import "time"

// Real is a Clock backed by the wall clock. Callbacks run on their own
// goroutines, exactly as with time.AfterFunc. It is the clock used by
// cmd/solagent when running against a live node.
type Real struct{}

// NewReal returns the wall-clock Clock.
func NewReal() *Real { return &Real{} }

// Now returns the current wall-clock time.
func (*Real) Now() time.Time { return time.Now() }

// AfterFunc schedules f on the wall clock via time.AfterFunc.
func (*Real) AfterFunc(d time.Duration, f func()) *Timer {
	t := time.AfterFunc(d, f)
	return &Timer{stop: t.Stop}
}
