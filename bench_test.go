package sol

// The benchmark harness: one benchmark per table and figure of the
// paper's evaluation, each regenerating its experiment end to end on
// the virtual clock, plus microbenchmarks for the runtime's hot paths.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// The per-figure benchmarks report the experiment's headline metric as
// custom benchmark outputs so regressions in *results*, not just speed,
// are visible across runs.

import (
	"testing"
	"time"

	"sol/internal/clock"
	"sol/internal/controlplane"
	"sol/internal/core"
	"sol/internal/experiments"
	"sol/internal/fleet"
	"sol/internal/ml/bandit"
	"sol/internal/ml/linear"
	"sol/internal/ml/qlearn"
	"sol/internal/stats"
)

// benchExperiment runs one experiment per iteration and reports the
// chosen metrics.
func benchExperiment(b *testing.B, id string, metrics ...string) {
	b.Helper()
	var last *experiments.Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Run(id, experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	for _, m := range metrics {
		b.ReportMetric(last.Metrics[m], m)
	}
}

func BenchmarkTable1(b *testing.B) {
	benchExperiment(b, "table1", "benefit_fraction")
}

func BenchmarkTable2(b *testing.B) {
	benchExperiment(b, "table2", "rows")
}

func BenchmarkFig1(b *testing.B) {
	benchExperiment(b, "fig1",
		"Synthetic/SmartOverclock/perf", "Synthetic/SmartOverclock/power",
		"Synthetic/static-2.3GHz/power")
}

func BenchmarkFig2(b *testing.B) {
	benchExperiment(b, "fig2",
		"with-validation/0.05/power", "without-validation/0.05/power")
}

func BenchmarkFig3(b *testing.B) {
	benchExperiment(b, "fig3",
		"DiskSpeed/without-safeguard/power_increase",
		"DiskSpeed/with-safeguard/power_increase")
}

func BenchmarkFig4(b *testing.B) {
	benchExperiment(b, "fig4",
		"blocking/extra_power", "non-blocking/extra_power")
}

func BenchmarkFig5(b *testing.B) {
	benchExperiment(b, "fig5",
		"with-safeguard/idle_power", "without-safeguard/idle_power")
}

func BenchmarkFig6Data(b *testing.B) {
	benchExperiment(b, "fig6data",
		"moses/with-validation/p99_increase", "moses/without-validation/p99_increase")
}

func BenchmarkFig6Model(b *testing.B) {
	benchExperiment(b, "fig6model",
		"moses/with-safeguard/p99_increase", "moses/without-safeguard/p99_increase")
}

func BenchmarkFig6Delay(b *testing.B) {
	benchExperiment(b, "fig6delay",
		"moses/non-blocking/p99_increase", "moses/blocking/p99_increase")
}

func BenchmarkFig7(b *testing.B) {
	benchExperiment(b, "fig7",
		"ObjectStore/SmartMemory/scan_reduction",
		"ObjectStore/SmartMemory/slo_attainment")
}

func BenchmarkFig8(b *testing.B) {
	benchExperiment(b, "fig8",
		"no-safeguards/slo_attainment", "all-safeguards/slo_attainment")
}

// Design-choice ablations called out in DESIGN.md.

func BenchmarkAblationEpsilon(b *testing.B) {
	benchExperiment(b, "ablation-epsilon", "eps=0.10/perf")
}

func BenchmarkAblationQueue(b *testing.B) {
	benchExperiment(b, "ablation-queue", "cap=4/p99_ms")
}

func BenchmarkExtSampler(b *testing.B) {
	benchExperiment(b, "ext-sampler",
		"SmartSampler/coverage", "static-round-robin/coverage")
}

// BenchmarkAblationBlocking quantifies the paper's central runtime
// design decision — the decoupled non-blocking actuator — as the ratio
// of extra power paid by the blocking strawman under model delays.
func BenchmarkAblationBlocking(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Run("fig4", experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		ratio = r.Metrics["blocking/extra_power"] / r.Metrics["non-blocking/extra_power"]
	}
	b.ReportMetric(ratio, "blocking_penalty_x")
}

// --- Fleet-scale benchmarks: many agents, many nodes ---

// benchFleet simulates a fleet of standard nodes (the paper's
// three-agent co-location) per iteration and reports the discrete-
// event throughput, the figure of merit for how much fleet one
// process can simulate.
func benchFleet(b *testing.B, nodes, workers int, dur time.Duration) {
	b.Helper()
	cfg := fleet.Config{
		Nodes:    nodes,
		Duration: dur,
		Workers:  workers,
		Setup:    fleet.StandardNode(fleet.StandardNodeConfig{Seed: 1}),
	}
	var events uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := fleet.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		events += rep.Events
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
	b.ReportMetric(float64(nodes)*dur.Seconds()*float64(b.N)/b.Elapsed().Seconds(), "node-s/s")
}

// BenchmarkSupervisorNode is one standard node with three co-located
// agents — the per-node cost every fleet size multiplies.
func BenchmarkSupervisorNode(b *testing.B) {
	benchFleet(b, 1, 1, 10*time.Second)
}

// BenchmarkFleet16 and BenchmarkFleet64 measure worker-pool scaling.
func BenchmarkFleet16(b *testing.B) {
	benchFleet(b, 16, 0, 5*time.Second)
}

func BenchmarkFleet64(b *testing.B) {
	benchFleet(b, 64, 0, 5*time.Second)
}

// BenchmarkFleetSerial pins the pool to one worker, isolating the
// parallel speedup of BenchmarkFleet64.
func BenchmarkFleetSerial(b *testing.B) {
	benchFleet(b, 64, 1, 5*time.Second)
}

// benchFleetStepped is benchFleet on the lockstep driver: the same
// fleet advanced barrier-by-barrier each observation interval. The
// delta against BenchmarkFleet64 is the price of mid-horizon
// observability — it must stay within ~20% of batch.
func benchFleetStepped(b *testing.B, nodes, workers int, dur, interval time.Duration) {
	b.Helper()
	cfg := fleet.Config{
		Nodes:    nodes,
		Duration: dur,
		Workers:  workers,
		Setup:    fleet.StandardNode(fleet.StandardNodeConfig{Seed: 1}),
	}
	var events uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := fleet.RunStepped(cfg, interval, nil)
		if err != nil {
			b.Fatal(err)
		}
		events += rep.Events
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
	b.ReportMetric(float64(nodes)*dur.Seconds()*float64(b.N)/b.Elapsed().Seconds(), "node-s/s")
}

// BenchmarkFleetStepped64 matches BenchmarkFleet64 with a 1 s lockstep
// epoch (5 barriers per run).
func BenchmarkFleetStepped64(b *testing.B) {
	benchFleetStepped(b, 64, 0, 5*time.Second, time.Second)
}

// --- Sharded coordination benchmarks ---
//
// The scenario both sides run: a fleet with a 1% canary cohort under
// fine-grained observation (2 ms — actuation/tick granularity, for
// studying a candidate's transient safety envelope) while the other
// 99% of nodes just need to reach the horizon. The single-barrier
// coordinator has one clock for everyone, so the whole fleet pays the
// canary's cadence: every node is visited every 2 ms, and at >= 1k
// nodes each revisit restarts from cold cache. The sharded conductor
// confines the cadence to the cohort and free-runs the rest to the
// next alignment — identical simulated events, radically less
// coordination. This is the structural gap that caps single-barrier
// fleet size (and on multi-core machines the shards also advance in
// parallel; this container is single-core, so the numbers here are
// pure coordination overhead, no parallelism).

// benchCohort returns the 1%-strided canary cohort for a fleet.
func benchCohort(nodes int) []int {
	cohort := make([]int, 0, nodes/100)
	for i := 0; i < nodes; i += 100 {
		cohort = append(cohort, i)
	}
	return cohort
}

// benchSteppedCanary drives the classic single-barrier coordinator:
// every node advances at the observation cadence, the cohort's health
// is read at every barrier.
func benchSteppedCanary(b *testing.B, nodes int, dur, cadence time.Duration) {
	b.Helper()
	cfg := fleet.Config{
		Nodes:    nodes,
		Duration: dur,
		Setup:    fleet.StandardNode(fleet.StandardNodeConfig{Seed: 1}),
	}
	cohort := benchCohort(nodes)
	var events uint64
	var scratch []fleet.MemberHealth
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := fleet.RunStepped(cfg, cadence, func(_ int, c *fleet.Coordinator) error {
			for _, idx := range cohort {
				scratch = c.Supervisor(idx).HealthDetailInto(scratch)
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		events += rep.Events
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
	b.ReportMetric(float64(nodes)*dur.Seconds()*float64(b.N)/b.Elapsed().Seconds(), "node-s/s")
}

// benchShardedCanary drives the same fleet, horizon, cohort, and
// observation cadence on the sharded conductor: each shard steps only
// its cohort members at the cadence and free-runs its other nodes to
// the horizon in one visit each. profile arms the conductor's
// self-profiler and trace its flight recorder — the *Profiled and
// *Traced twins exist so the bench script can hold each observability
// layer to its <= 2% budget.
func benchShardedCanary(b *testing.B, nodes, shards int, dur, cadence time.Duration, profile, trace bool) {
	b.Helper()
	cfg := fleet.Config{
		Nodes:    nodes,
		Duration: dur,
		Shards:   shards,
		Profile:  profile,
		Trace:    trace,
		Setup:    fleet.StandardNode(fleet.StandardNodeConfig{Seed: 1}),
	}
	cohort := benchCohort(nodes)
	var events uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		co, err := fleet.NewCoordinator(cfg)
		if err != nil {
			b.Fatal(err)
		}
		con := co.Conductor()
		byShard := make([][]int, con.Shards())
		scratch := make([][]fleet.MemberHealth, con.Shards())
		for _, idx := range cohort {
			s := con.ShardOf(idx)
			byShard[s] = append(byShard[s], idx)
		}
		err = co.Span(ShardSpan{
			Until:    dur,
			Interval: cadence,
			Stepped:  func(s int) []int { return byShard[s] },
			OnEpoch: func(s, _ int, _, _ time.Duration) {
				for _, idx := range byShard[s] {
					scratch[s] = co.Supervisor(idx).HealthDetailInto(scratch[s])
				}
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		rep := co.Report()
		co.StopAll()
		events += rep.Events
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
	b.ReportMetric(float64(nodes)*dur.Seconds()*float64(b.N)/b.Elapsed().Seconds(), "node-s/s")
}

// BenchmarkFleet1kStepped / BenchmarkFleet1kSharded: the 1k-node
// canary-observation pair at equal worker budget.
func BenchmarkFleet1kStepped(b *testing.B) {
	benchSteppedCanary(b, 1000, 500*time.Millisecond, 2*time.Millisecond)
}

func BenchmarkFleet1kSharded(b *testing.B) {
	benchShardedCanary(b, 1000, 8, 500*time.Millisecond, 2*time.Millisecond, false, false)
}

// BenchmarkFleet4kStepped / BenchmarkFleet4kSharded: at 4k nodes the
// per-epoch sweep no longer fits any cache level and the single
// barrier's cost dominates; this is the pair that shows the >= 1.5x
// structural gap.
func BenchmarkFleet4kStepped(b *testing.B) {
	benchSteppedCanary(b, 4000, 500*time.Millisecond, 2*time.Millisecond)
}

func BenchmarkFleet4kSharded(b *testing.B) {
	benchShardedCanary(b, 4000, 16, 500*time.Millisecond, 2*time.Millisecond, false, false)
}

// BenchmarkFleet4kShardedProfiled is BenchmarkFleet4kSharded with the
// conductor's self-profiler accumulating per-shard time attribution on
// every epoch of the 2 ms canary cadence — the worst case for profiler
// overhead (max samples per simulated second). Must stay within 2% of
// the unprofiled twin.
func BenchmarkFleet4kShardedProfiled(b *testing.B) {
	benchShardedCanary(b, 4000, 16, 500*time.Millisecond, 2*time.Millisecond, true, false)
}

// BenchmarkFleet4kShardedTraced is BenchmarkFleet4kSharded with the
// flight recorder on: every span begin/end and epoch on the 2 ms
// canary cadence lands in the per-shard rings — the maximum event rate
// the recorder sees. Appends are single-writer ring stores with zero
// allocations, so this twin must stay within 2% of the untraced one.
func BenchmarkFleet4kShardedTraced(b *testing.B) {
	benchShardedCanary(b, 4000, 16, 500*time.Millisecond, 2*time.Millisecond, false, true)
}

// BenchmarkFleet10kSharded is the ROADMAP's north-star feasibility
// check: a 10k-node, 30k-agent fleet simulated in one process on the
// sharded conductor, with the canary cohort still observed at 2 ms.
func BenchmarkFleet10kSharded(b *testing.B) {
	benchShardedCanary(b, 10000, 32, 250*time.Millisecond, 2*time.Millisecond, false, false)
}

// BenchmarkRollout32Sharded is BenchmarkRollout32 on the sharded
// campaign engine (4 shards): per-shard cohorts, shard-local soak
// observation, alignment only at gate boundaries. At the control
// plane's coarse 5 s epochs the two engines are within noise — the
// sharded one pays for its structure only where fine cadences would
// otherwise serialize the fleet.
func BenchmarkRollout32Sharded(b *testing.B) {
	cfg, err := controlplane.NewScenario(controlplane.ScenarioSpec{
		Scenario: controlplane.ScenarioHealthy,
		Nodes:    32,
		Duration: 45 * time.Second,
		Interval: 5 * time.Second,
		Kinds:    []string{"harvest"},
		Seed:     1,
		Shards:   4,
	})
	if err != nil {
		b.Fatal(err)
	}
	var events uint64
	completed := true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := controlplane.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		events += rep.Fleet.Events
		completed = completed && rep.Completed
	}
	if !completed {
		b.Fatal("sharded healthy rollout did not complete")
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkRollout32 runs a full healthy rollout campaign — canary to
// 100% in four health-gated waves — over a 32-node lockstep fleet.
func BenchmarkRollout32(b *testing.B) {
	cfg, err := controlplane.NewScenario(controlplane.ScenarioSpec{
		Scenario: controlplane.ScenarioHealthy,
		Nodes:    32,
		Duration: 45 * time.Second,
		Interval: 5 * time.Second,
		Kinds:    []string{"harvest"},
		Seed:     1,
	})
	if err != nil {
		b.Fatal(err)
	}
	var events uint64
	completed := true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := controlplane.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		events += rep.Fleet.Events
		completed = completed && rep.Completed
	}
	if !completed {
		b.Fatal("healthy rollout did not complete")
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkRollout32Profiled is BenchmarkRollout32 with the fleet
// self-profiler on: per-wave profile deltas are snapped at every gate
// decision and the final report carries the full attribution. At the
// control plane's coarse 5 s epochs the profiler is consulted a
// handful of times per simulated second, so this twin must be within
// 2% (noise) of BenchmarkRollout32.
func BenchmarkRollout32Profiled(b *testing.B) {
	cfg, err := controlplane.NewScenario(controlplane.ScenarioSpec{
		Scenario: controlplane.ScenarioHealthy,
		Nodes:    32,
		Duration: 45 * time.Second,
		Interval: 5 * time.Second,
		Kinds:    []string{"harvest"},
		Seed:     1,
	})
	if err != nil {
		b.Fatal(err)
	}
	cfg.Fleet.Profile = true
	var events uint64
	completed := true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := controlplane.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.WaveProfiles) == 0 {
			b.Fatal("profiled rollout recorded no wave profiles")
		}
		events += rep.Fleet.Events
		completed = completed && rep.Completed
	}
	if !completed {
		b.Fatal("profiled healthy rollout did not complete")
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkRollout32Traced is BenchmarkRollout32 with the flight
// recorder on: spans, epochs, campaign decisions, and heap samples all
// recorded over the full four-wave rollout. At the control plane's
// coarse 5 s epochs the recorder sees a handful of events per
// simulated second, so this twin must be within 2% (noise) of
// BenchmarkRollout32.
func BenchmarkRollout32Traced(b *testing.B) {
	cfg, err := controlplane.NewScenario(controlplane.ScenarioSpec{
		Scenario: controlplane.ScenarioHealthy,
		Nodes:    32,
		Duration: 45 * time.Second,
		Interval: 5 * time.Second,
		Kinds:    []string{"harvest"},
		Seed:     1,
	})
	if err != nil {
		b.Fatal(err)
	}
	cfg.Fleet.Trace = true
	var events uint64
	completed := true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := controlplane.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Fleet.Trace == nil {
			b.Fatal("traced rollout recorded no trace")
		}
		events += rep.Fleet.Events
		completed = completed && rep.Completed
	}
	if !completed {
		b.Fatal("traced healthy rollout did not complete")
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkRollout32Robust is BenchmarkRollout32 with the full PR-7
// robustness policy armed — quorum gate, soak extends, deploy
// retries, down-node tolerance — but no lifecycle plan, so no fault
// ever fires. Events/s must stay within noise of BenchmarkRollout32:
// the policy is consulted only at gate boundaries, and the per-epoch
// stepping path skips all lifecycle bookkeeping when the fleet has no
// lifecycle plan.
func BenchmarkRollout32Robust(b *testing.B) {
	cfg, err := controlplane.NewScenario(controlplane.ScenarioSpec{
		Scenario: controlplane.ScenarioHealthy,
		Nodes:    32,
		Duration: 45 * time.Second,
		Interval: 5 * time.Second,
		Kinds:    []string{"harvest"},
		Seed:     1,
	})
	if err != nil {
		b.Fatal(err)
	}
	cfg.Campaign.Quorum = 0.9
	cfg.Campaign.MaxSoakExtends = 2
	cfg.Campaign.DeployRetries = 2
	cfg.Campaign.TolerateDown = -1
	var events uint64
	completed := true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := controlplane.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		events += rep.Fleet.Events
		completed = completed && rep.Completed
	}
	if !completed {
		b.Fatal("robust-policy healthy rollout did not complete")
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkRolloutManifest32 is BenchmarkRollout32 driven from a
// declarative JSON manifest: the campaign is parsed and its agent
// specs are resolved against the kind registry at every deploy.
// Events/s must stay within noise of the closure-built rollout — spec
// resolution happens only at wave boundaries, never on the per-event
// hot path.
func BenchmarkRolloutManifest32(b *testing.B) {
	const manifest = `{
		"nodes": 32, "duration": "45s", "interval": "5s",
		"kinds": ["harvest"], "seed": 1,
		"campaign": {
			"name": "buffer-3", "seed": 1,
			"targets": [{"candidate": {
				"kind": "harvest", "variant": "buffer-3",
				"params": {"Config": {"SafetyBuffer": 3}}
			}}]
		}
	}`
	var events uint64
	completed := true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := controlplane.ParseManifest([]byte(manifest))
		if err != nil {
			b.Fatal(err)
		}
		cfg, err := m.Config()
		if err != nil {
			b.Fatal(err)
		}
		rep, err := controlplane.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		events += rep.Fleet.Events
		completed = completed && rep.Completed
	}
	if !completed {
		b.Fatal("manifest rollout did not complete")
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
}

// --- Microbenchmarks: the runtime and learner hot paths ---

type nopModel struct{ clk clock.Clock }

func (m *nopModel) CollectData() (int, error) { return 1, nil }
func (m *nopModel) ValidateData(int) error    { return nil }
func (m *nopModel) CommitData(time.Time, int) {}
func (m *nopModel) UpdateModel()              {}
func (m *nopModel) Predict() (Prediction[int], error) {
	return Prediction[int]{Value: 1, Expires: m.clk.Now().Add(time.Second)}, nil
}
func (m *nopModel) DefaultPredict() Prediction[int] { return Prediction[int]{} }
func (m *nopModel) AssessModel() bool               { return true }

type nopActuator struct{}

func (nopActuator) TakeAction(*Prediction[int]) {}
func (nopActuator) AssessPerformance() bool     { return true }
func (nopActuator) Mitigate()                   {}
func (nopActuator) CleanUp()                    {}

// BenchmarkRuntimeEpoch measures the full SOL loop machinery: one
// 10-sample learning epoch plus actuation, scheduled on the virtual
// clock.
func BenchmarkRuntimeEpoch(b *testing.B) {
	clk := clock.NewVirtualSingle(time.Unix(0, 0))
	rt := core.MustRun[int, int](clk, &nopModel{clk: clk}, nopActuator{}, Schedule{
		DataPerEpoch:           10,
		DataCollectInterval:    100 * time.Millisecond,
		MaxEpochTime:           1500 * time.Millisecond,
		AssessModelEvery:       1,
		MaxActuationDelay:      5 * time.Second,
		AssessActuatorInterval: time.Second,
	}, Options{})
	defer rt.Stop()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clk.RunFor(time.Second) // one epoch
	}
}

func BenchmarkQLearnStep(b *testing.B) {
	l := qlearn.MustNew(qlearn.Config{
		States: 10, Actions: 3, Alpha: 0.4, Gamma: 0.3, Epsilon: 0.1, RandSeed: 1,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, _ := l.SelectAction(i % 10)
		l.Update(i%10, a, 0.5, (i+1)%10)
	}
}

func BenchmarkCostSensitiveUpdate(b *testing.B) {
	cls := linear.MustNewCostSensitive(9, 6, 0.05)
	x := []float64{0.2, 0.4, 0.35, 0.1, 0.3, 0.02}
	costs := linear.AsymmetricCosts(9, 4, 8, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cls.Update(x, costs)
		_ = cls.Predict(x)
	}
}

func BenchmarkThompsonSelect(b *testing.B) {
	t := bandit.MustNew(6, stats.NewRNG(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arm := t.Select()
		t.Reward(arm, i%3 == 0)
	}
}

func BenchmarkWindowPercentile(b *testing.B) {
	w := stats.NewWindow(100)
	rng := stats.NewRNG(1)
	for i := 0; i < 100; i++ {
		w.Add(rng.Float64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Add(rng.Float64())
		_ = w.Percentile(99)
	}
}

// BenchmarkVirtualClock is the event engine's steady-state hot path:
// one self-re-arming ticker on a lock-elided single-driver clock. This
// is the per-event cost every fleet simulation pays, so it must stay
// at zero allocations per event.
func BenchmarkVirtualClock(b *testing.B) {
	clk := clock.NewVirtualSingle(time.Unix(0, 0))
	clk.Tick(time.Millisecond, func() {})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clk.Step()
	}
}

// BenchmarkVirtualClockLocked is the same ticker on the mutexed clock,
// isolating the cost of the lock-elided single-driver mode.
func BenchmarkVirtualClockLocked(b *testing.B) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	clk.Tick(time.Millisecond, func() {})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clk.Step()
	}
}

// BenchmarkVirtualAfterFunc is the pre-Tick idiom — a fresh one-shot
// timer per event — kept as the yardstick for what Reset/Tick save.
func BenchmarkVirtualAfterFunc(b *testing.B) {
	clk := clock.NewVirtualSingle(time.Unix(0, 0))
	var tick func()
	tick = func() { clk.AfterFunc(time.Millisecond, tick) }
	clk.AfterFunc(time.Millisecond, tick)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clk.Step()
	}
}
