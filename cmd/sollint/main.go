// Command sollint runs the sol static-analysis suite (see
// internal/lint) over Go packages. It speaks two protocols:
//
// Standalone, for humans and CI:
//
//	go run ./cmd/sollint ./...
//
// loads the matched packages (tests included, disable with
// -tests=false), applies every analyzer, prints findings as
// file:line:col: [analyzer] message, and exits 1 if there were any.
//
// Vet tool, for go vet integration:
//
//	go build -o bin/sollint ./cmd/sollint
//	go vet -vettool=$(pwd)/bin/sollint ./...
//
// in which the go command invokes the binary once per package with a
// .cfg file describing sources and export data, per the x/tools
// unitchecker protocol (-V=full version handshake, -flags probe,
// exit 2 on findings).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"sort"
	"strings"

	"sol/internal/lint"
	"sol/internal/lint/analysis"
	"sol/internal/lint/load"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sollint: ")

	// The go command probes vet tools before use: -V=full must print a
	// "name version ..." line it hashes into the build cache key, and
	// -flags must list the tool's flags as JSON (none to expose here).
	if len(os.Args) == 2 {
		switch os.Args[1] {
		case "-V=full", "--V=full":
			fmt.Println("sollint version v1")
			return
		case "-flags", "--flags":
			fmt.Println("[]")
			return
		}
	}

	tests := flag.Bool("tests", true, "also lint _test.go files and external test packages")
	flag.Parse()
	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitCheck(args[0]))
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	os.Exit(standalone(args, *tests))
}

// finding is one diagnostic resolved to a printable position.
type finding struct {
	pos      token.Position
	analyzer string
	msg      string
}

// runSuite applies every analyzer to one type-checked package.
func runSuite(fset *token.FileSet, files []*ast.File, tpkg *types.Package, info *types.Info) []finding {
	var out []finding
	for _, a := range lint.Suite() {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       tpkg,
			TypesInfo: info,
			Report: func(d analysis.Diagnostic) {
				out = append(out, finding{pos: fset.Position(d.Pos), analyzer: a.Name, msg: d.Message})
			},
		}
		if _, err := a.Run(pass); err != nil {
			log.Fatalf("%s: %v", a.Name, err)
		}
	}
	return out
}

// sortFindings orders findings by position then analyzer, so output is
// stable however packages and analyzers interleave.
func sortFindings(fs []finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.pos.Filename != b.pos.Filename {
			return a.pos.Filename < b.pos.Filename
		}
		if a.pos.Line != b.pos.Line {
			return a.pos.Line < b.pos.Line
		}
		if a.pos.Column != b.pos.Column {
			return a.pos.Column < b.pos.Column
		}
		return a.analyzer < b.analyzer
	})
}

// standalone expands patterns, lints every match, and prints findings.
func standalone(patterns []string, tests bool) int {
	l := load.New()
	l.Tests = tests
	pkgs, err := l.Patterns(patterns...)
	if err != nil {
		log.Fatal(err)
	}
	var all []finding
	for _, pkg := range pkgs {
		all = append(all, runSuite(pkg.Fset, pkg.Files, pkg.Types, pkg.Info)...)
	}
	sortFindings(all)
	for _, f := range all {
		fmt.Printf("%s: [%s] %s\n", f.pos, f.analyzer, f.msg)
	}
	if len(all) > 0 {
		return 1
	}
	return 0
}

// vetConfig is the per-package JSON the go command hands a vet tool,
// per the unitchecker protocol.
type vetConfig struct {
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitCheck lints one package described by a go vet .cfg file.
func unitCheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		log.Fatal(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		log.Fatalf("%s: %v", cfgPath, err)
	}
	// The go command requires the facts file to exist after the run;
	// sollint's analyzers are intraprocedural, so it is always empty.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			log.Fatal(err)
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			log.Fatal(err)
		}
		files = append(files, f)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: imp, GoVersion: cfg.GoVersion}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		log.Fatalf("typechecking %s: %v", cfg.ImportPath, err)
	}

	findings := runSuite(fset, files, tpkg, info)
	sortFindings(findings)
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", f.pos, f.analyzer, f.msg)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}
