// Command sollint runs the sol static-analysis suite (see
// internal/lint) over Go packages. It speaks two protocols:
//
// Standalone, for humans and CI:
//
//	go run ./cmd/sollint ./...
//
// loads the matched packages (tests included, disable with
// -tests=false), applies every analyzer, prints findings as
// file:line:col: [analyzer] message (or as a JSON array with -json),
// and exits 1 if there were any.
//
// Vet tool, for go vet integration:
//
//	go build -o bin/sollint ./cmd/sollint
//	go vet -vettool=$(pwd)/bin/sollint ./...
//
// in which the go command invokes the binary once per package with a
// .cfg file describing sources and export data, per the x/tools
// unitchecker protocol (-V=full version handshake, -flags probe,
// exit 2 on findings).
//
// It also maintains the wire-format lock the wirestable analyzer
// compares against:
//
//	go run ./cmd/sollint -wirelock           # verify the lock matches the tree
//	go run ./cmd/sollint -wirelock -update   # regenerate it
//
// The check form is a CI gate: a stale or hand-edited
// internal/lint/wirelock/wirelock.json fails the build.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"sol/internal/lint"
	"sol/internal/lint/analysis"
	"sol/internal/lint/load"
	"sol/internal/lint/wirelock"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sollint: ")

	// The go command probes vet tools before use: -V=full must print a
	// "name version ..." line it hashes into the build cache key, and
	// -flags must list the tool's flags as JSON (none to expose here).
	// Folding the wirelock hash into the version string keys go vet's
	// result cache on the lock contents, so regenerating the lock
	// invalidates cached wirestable results.
	if len(os.Args) == 2 {
		switch os.Args[1] {
		case "-V=full", "--V=full":
			fmt.Printf("sollint version v1+wirelock-%s\n", wirelock.Hash())
			return
		case "-flags", "--flags":
			fmt.Println("[]")
			return
		}
	}

	tests := flag.Bool("tests", true, "also lint _test.go files and external test packages")
	jsonOut := flag.Bool("json", false, "print findings as a JSON array (standalone mode only)")
	lockMode := flag.Bool("wirelock", false, "check internal/lint/wirelock/wirelock.json against the tree instead of linting")
	lockUpdate := flag.Bool("update", false, "with -wirelock: rewrite the lock instead of comparing")
	flag.Parse()
	args := flag.Args()
	if *lockMode {
		os.Exit(wirelockMode(*lockUpdate))
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitCheck(args[0]))
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	os.Exit(standalone(args, *tests, *jsonOut))
}

// finding is one diagnostic resolved to a printable position.
type finding struct {
	pos      token.Position
	analyzer string
	msg      string
}

// runSuite applies every analyzer to one type-checked package.
func runSuite(fset *token.FileSet, files []*ast.File, tpkg *types.Package, info *types.Info) []finding {
	var out []finding
	for _, a := range lint.Suite() {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       tpkg,
			TypesInfo: info,
			Report: func(d analysis.Diagnostic) {
				out = append(out, finding{pos: fset.Position(d.Pos), analyzer: a.Name, msg: d.Message})
			},
		}
		if _, err := a.Run(pass); err != nil {
			log.Fatalf("%s: %v", a.Name, err)
		}
	}
	return out
}

// sortFindings orders findings by position then analyzer, so output is
// stable however packages and analyzers interleave.
func sortFindings(fs []finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.pos.Filename != b.pos.Filename {
			return a.pos.Filename < b.pos.Filename
		}
		if a.pos.Line != b.pos.Line {
			return a.pos.Line < b.pos.Line
		}
		if a.pos.Column != b.pos.Column {
			return a.pos.Column < b.pos.Column
		}
		return a.analyzer < b.analyzer
	})
}

// standalone expands patterns, lints every match, and prints findings.
func standalone(patterns []string, tests, jsonOut bool) int {
	l := load.New()
	l.Tests = tests
	pkgs, err := l.Patterns(patterns...)
	if err != nil {
		log.Fatal(err)
	}
	var all []finding
	for _, pkg := range pkgs {
		all = append(all, runSuite(pkg.Fset, pkg.Files, pkg.Types, pkg.Info)...)
	}
	sortFindings(all)
	if jsonOut {
		js := make([]lint.JSONFinding, len(all))
		for i, f := range all {
			js[i] = lint.JSONFinding{File: f.pos.Filename, Line: f.pos.Line, Col: f.pos.Column, Analyzer: f.analyzer, Message: f.msg}
		}
		if err := lint.EncodeJSON(os.Stdout, js); err != nil {
			log.Fatal(err)
		}
	} else {
		for _, f := range all {
			fmt.Printf("%s: [%s] %s\n", f.pos, f.analyzer, f.msg)
		}
	}
	if len(all) > 0 {
		return 1
	}
	return 0
}

// wirelockMode regenerates the wire-format lock from the module's
// source (tests excluded — test fixtures must not enter the lock) and
// either writes it (-update) or byte-compares it against the
// checked-in file.
func wirelockMode(update bool) int {
	l := load.New()
	l.Tests = false
	pkgs, err := l.Patterns("./...")
	if err != nil {
		log.Fatal(err)
	}
	problems := 0
	lock := &wirelock.File{}
	for _, pkg := range pkgs {
		fset := pkg.Fset
		entries := lint.CollectWireTypes(fset, pkg.Files, pkg.Types, pkg.Info, func(pos token.Pos, format string, args ...any) {
			problems++
			fmt.Fprintf(os.Stderr, "%s: [wirestable] %s\n", fset.Position(pos), fmt.Sprintf(format, args...))
		})
		lock.Types = append(lock.Types, entries...)
	}
	if problems > 0 {
		log.Printf("wirelock: %d wire-hygiene problem(s); fix them before locking", problems)
		return 1
	}
	data, err := lock.Marshal()
	if err != nil {
		log.Fatal(err)
	}
	path := wirelockPath()
	if update {
		if err := os.WriteFile(path, data, 0o666); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("sollint: wrote %s (%d wire types)\n", path, len(lock.Types))
		return 0
	}
	disk, err := os.ReadFile(path)
	if err != nil {
		log.Printf("wirelock: %v — run `go run ./cmd/sollint -wirelock -update`", err)
		return 1
	}
	if !bytes.Equal(disk, data) {
		log.Printf("wirelock: %s is stale against the tree (a wire type changed, or the file was edited) — run `go run ./cmd/sollint -wirelock -update` and review the diff", path)
		return 1
	}
	fmt.Printf("sollint: wirelock up to date (%d wire types)\n", len(lock.Types))
	return 0
}

// wirelockPath locates the checked-in lock through the go command, so
// the check works from any working directory inside the module.
func wirelockPath() string {
	out, err := exec.Command("go", "list", "-f", "{{.Dir}}", "sol/internal/lint/wirelock").Output()
	if err != nil {
		log.Fatalf("locating wirelock package: %v", err)
	}
	return filepath.Join(strings.TrimSpace(string(out)), "wirelock.json")
}

// vetConfig is the per-package JSON the go command hands a vet tool,
// per the unitchecker protocol.
type vetConfig struct {
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitCheck lints one package described by a go vet .cfg file.
func unitCheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		log.Fatal(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		log.Fatalf("%s: %v", cfgPath, err)
	}
	// The go command requires the facts file to exist after the run;
	// sollint's analyzers are intraprocedural, so it is always empty.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			log.Fatal(err)
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			log.Fatal(err)
		}
		files = append(files, f)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: imp, GoVersion: cfg.GoVersion}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		log.Fatalf("typechecking %s: %v", cfg.ImportPath, err)
	}

	findings := runSuite(fset, files, tpkg, info)
	sortFindings(findings)
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", f.pos, f.analyzer, f.msg)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}
