// Command solrollout runs a fleet rollout campaign under the SOL
// control plane: agent variants are deployed across a simulated fleet
// in health-gated waves (1% → 5% → 25% → 100% by default), every node
// advancing in deterministic lockstep epochs. Each wave proceeds only
// while the converted cohort passes the shared health gate; a failed
// gate rolls the whole cohort — every target kind — back to the
// baseline variants and names the paper's §3.2 failure class it
// tripped on.
//
// Campaigns come from two places. Three built-in scenarios demonstrate
// the control plane:
//
//	healthy          a sane candidate; completes at 100%
//	bad-variant      a botched candidate; caught and rolled back at the canary
//	fault-storm      a scheduling-delay storm during wave 3; rolled back,
//	                 while SOL's decoupled actuators keep deadlines met
//	crash-storm      a sane candidate through a 20% node crash storm; the
//	                 quorum gate abstains over missing nodes instead of
//	                 blaming the variant, and the campaign completes
//	crash-storm-bad  a botched candidate during the same storm; still
//	                 caught and rolled back with the right failure class
//
// Or a JSON campaign manifest declares the whole run — fleet, wave
// plan, gate, and one or more agent-variant targets — so rollouts can
// be stored, reviewed, and diffed like any other config:
//
//	solrollout -config examples/rollout/manifest.json
//
// -shards partitions the fleet coordination: each shard soaks and
// observes its cohort slice on its own barrier, and the fleet aligns
// only at gate boundaries (see internal/shard). -plan reviews a
// manifest without running anything: it prints the resolved node-0
// variant delta (baseline vs candidate) per target kind.
//
// -journal records every campaign decision to a crash-safe journal as
// it is made; if the scheduler is killed, -resume continues the same
// campaign from the journal, producing a report byte-identical to the
// uninterrupted run. The journal carries a configuration fingerprint,
// so resuming under different flags is refused instead of silently
// diverging. -kill-after n exits with status 3 once the journal holds
// n decisions — the crash half of a kill/resume round trip in CI.
//
// Usage:
//
//	solrollout                                   # healthy, 100 nodes
//	solrollout -scenario bad-variant -nodes 250
//	solrollout -scenario fault-storm -waves 0.02,0.1,0.5,1 -soak 3
//	solrollout -scenario crash-storm -expect complete
//	solrollout -config manifest.json -expect rollback
//	solrollout -config manifest.json -shards 8   # sharded coordination
//	solrollout -config manifest.json -plan       # dry-run review
//	solrollout -journal run.journal -kill-after 2   # crash mid-campaign
//	solrollout -journal run.journal -resume         # continue it
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"sol/internal/controlplane"
	"sol/internal/fleet"
)

// metricsVersion versions the -metrics envelope; the embedded fleet
// report carries its own wire version besides.
const metricsVersion = 1

// metricsOut is the -metrics export: a versioned envelope around the
// full campaign report (trace, verdict, wave profiles, fleet report)
// so CI can validate the schema before trusting the numbers.
//
//sollint:wire metricsVersion
type metricsOut struct {
	Schema     string               `json:"schema"`
	Version    int                  `json:"version"`
	Tool       string               `json:"tool"`
	ElapsedNS  int64                `json:"elapsed_ns"`
	EventsPerS float64              `json:"events_per_s"`
	Report     *controlplane.Report `json:"report"`
}

func main() {
	var (
		config = flag.String("config", "",
			"campaign manifest (JSON); overrides the scenario flags")
		scenario = flag.String("scenario", controlplane.ScenarioHealthy,
			"campaign scenario: "+strings.Join(controlplane.Scenarios(), ", "))
		nodes    = flag.Int("nodes", 100, "number of simulated nodes")
		duration = flag.Duration("duration", time.Minute, "simulated horizon")
		interval = flag.Duration("interval", 5*time.Second, "lockstep observation epoch")
		waves    = flag.String("waves", "", "comma-separated cumulative wave fractions (default 0.01,0.05,0.25,1)")
		soak     = flag.Int("soak", 2, "epochs each wave soaks before its gate")
		agents   = flag.String("agents", strings.Join(fleet.StandardKinds, ","),
			"comma-separated agent kinds to co-locate on every node")
		seed    = flag.Uint64("seed", 1, "fleet-wide workload and cohort-shuffle seed")
		workers = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		shards  = flag.Int("shards", -1,
			"coordination shards: 0 = classic single-barrier engine, N >= 1 = sharded conductor (-1 = manifest/default)")
		plan = flag.Bool("plan", false,
			"dry run: print the manifest's resolved per-kind variant delta (node 0) and exit without running the fleet")
		expect = flag.String("expect", "",
			"exit nonzero unless the campaign ends this way: complete, rollback (default: no check)")
		journal = flag.String("journal", "",
			"record campaign decisions to this crash-safe journal file (requires a campaign)")
		resume = flag.Bool("resume", false,
			"continue a killed campaign from -journal instead of starting fresh")
		killAfter = flag.Int("kill-after", 0,
			"exit with status 3 once -journal holds this many decisions (CI crash injection; 0 = never)")
		profile = flag.Bool("profile", false,
			"attribute wall time per shard and per wave (step/free/align/wait) and add profile lines to the report")
		metrics = flag.String("metrics", "",
			"write the campaign report (+profiles) as versioned JSON to this file")
		trace = flag.String("trace", "",
			"record a flight-recorder trace and write it as Chrome Trace Event JSON (Perfetto-loadable) to this file")
	)
	flag.Parse()
	switch *expect {
	case "", "complete", "rollback":
	default:
		log.Fatalf("solrollout: -expect %q, want complete or rollback", *expect)
	}
	if *plan && *expect != "" {
		// A dry run never executes the campaign, so an outcome
		// assertion would pass vacuously — refuse the combination
		// instead of letting a CI check silently stop checking.
		log.Fatalf("solrollout: -plan runs nothing, so -expect %s cannot be checked; drop one of the flags", *expect)
	}
	switch {
	case *plan && *journal != "":
		log.Fatalf("solrollout: -plan runs nothing, so there is no campaign to journal; drop one of the flags")
	case (*resume || *killAfter > 0) && *journal == "":
		log.Fatalf("solrollout: -resume and -kill-after need -journal")
	case *resume && *killAfter > 0:
		// Resume re-verifies the recorded prefix and runs to the end;
		// killing it again would need the hook Resume owns internally.
		log.Fatalf("solrollout: -kill-after applies to the recording run, not -resume")
	case *killAfter < 0:
		log.Fatalf("solrollout: -kill-after %d, must be >= 0", *killAfter)
	}

	var cfg controlplane.Config
	var fingerprint string
	if *config != "" {
		raw, err := os.ReadFile(*config)
		if err != nil {
			log.Fatalf("solrollout: %v", err)
		}
		fingerprint = fnvHex(string(raw))
		m, err := controlplane.ParseManifest(raw)
		if err != nil {
			log.Fatalf("solrollout: %v (in %s)", err, *config)
		}
		if *shards >= 0 {
			m.Shards = *shards
		}
		if *plan {
			out, err := m.Plan()
			if err != nil {
				log.Fatalf("solrollout: %v", err)
			}
			fmt.Println(out)
			return
		}
		cfg, err = m.Config()
		if err != nil {
			log.Fatalf("solrollout: %v", err)
		}
	} else if *plan {
		log.Fatalf("solrollout: -plan needs a manifest (-config)")
	} else {
		var kinds []string
		for _, k := range strings.Split(*agents, ",") {
			if k = strings.TrimSpace(k); k != "" {
				kinds = append(kinds, k)
			}
		}
		var fracs []float64
		if *waves != "" {
			for _, w := range strings.Split(*waves, ",") {
				f, err := strconv.ParseFloat(strings.TrimSpace(w), 64)
				if err != nil {
					log.Fatalf("solrollout: bad wave fraction %q: %v", w, err)
				}
				fracs = append(fracs, f)
			}
		}
		sc := controlplane.ScenarioSpec{
			Scenario:   *scenario,
			Nodes:      *nodes,
			Duration:   *duration,
			Interval:   *interval,
			Waves:      fracs,
			SoakEpochs: *soak,
			Kinds:      kinds,
			Seed:       *seed,
			Workers:    *workers,
		}
		if *shards >= 0 {
			sc.Shards = *shards
		}
		// The fingerprint covers every flag that shapes campaign
		// decisions. Workers are excluded on purpose: the worker pool
		// width never changes the deterministic trace, so a journal
		// recorded at -workers 1 resumes fine at -workers 8.
		fingerprint = fnvHex(fmt.Sprintf("scenario|%s|%d|%v|%v|%s|%d|%s|%d|%d",
			sc.Scenario, sc.Nodes, sc.Duration, sc.Interval, *waves, sc.SoakEpochs,
			strings.Join(sc.Kinds, ","), sc.Seed, sc.Shards))
		var err error
		cfg, err = controlplane.NewScenario(sc)
		if err != nil {
			log.Fatalf("solrollout: %v", err)
		}
	}
	// Profiling and tracing are excluded from the journal fingerprint
	// for the same reason workers are: they never shape campaign
	// decisions, so a journal recorded without -profile/-trace resumes
	// fine with them (and vice versa) — observability is diagnostics,
	// not state.
	cfg.Fleet.Profile = *profile
	cfg.Fleet.Trace = *trace != ""
	if *journal != "" && cfg.Campaign == nil {
		log.Fatalf("solrollout: -journal needs a campaign, and this configuration has none")
	}

	if camp := cfg.Campaign; camp != nil {
		shardLabel := ""
		if cfg.Fleet.Shards > 0 {
			shardLabel = fmt.Sprintf(" on %d shard(s)", cfg.Fleet.Shards)
		}
		fmt.Printf("rolling out %q (kinds %s) across %d nodes%s for %v, %v lockstep epochs...\n",
			camp.Name, strings.Join(camp.Kinds(), "+"), cfg.Fleet.Nodes, shardLabel, cfg.Fleet.Duration, cfg.Interval)
	} else {
		fmt.Printf("driving %d nodes for %v with no campaign, %v lockstep epochs...\n",
			cfg.Fleet.Nodes, cfg.Fleet.Duration, cfg.Interval)
	}
	wall := time.Now()
	var rep *controlplane.Report
	var err error
	switch {
	case *resume:
		fmt.Printf("resuming from journal %s...\n", *journal)
		rep, err = controlplane.Resume(cfg, *journal, fingerprint)
	case *journal != "":
		j, jerr := controlplane.CreateJournal(*journal, cfg.Campaign.Name, fingerprint)
		if jerr != nil {
			log.Fatalf("solrollout: %v", jerr)
		}
		defer j.Close()
		if *killAfter > 0 {
			n := *killAfter
			j.AfterAppend = func(entries int) {
				if entries >= n {
					fmt.Printf("solrollout: journal holds %d decision(s); exiting as asked (-kill-after %d)\n", entries, n)
					os.Exit(3)
				}
			}
		}
		cfg.Journal = j
		rep, err = controlplane.Run(cfg)
	default:
		rep, err = controlplane.Run(cfg)
	}
	if err != nil {
		log.Fatalf("solrollout: %v", err)
	}
	elapsed := time.Since(wall)

	fmt.Println()
	fmt.Println(rep)
	simulated := time.Duration(cfg.Fleet.Nodes) * cfg.Fleet.Duration
	fmt.Printf("\nwall time %v: %.0fx real time, %.2fM events (%.2fM events/s)\n",
		elapsed.Round(time.Millisecond),
		simulated.Seconds()/elapsed.Seconds(),
		float64(rep.Fleet.Events)/1e6,
		float64(rep.Fleet.Events)/1e6/elapsed.Seconds())

	if *trace != "" {
		// Chrome Trace Event JSON with the versioned sol wire form
		// riding along under the "sol" key — loadable in Perfetto.
		if rep.Fleet.Trace == nil {
			log.Fatalf("solrollout: -trace %s: the run recorded no trace", *trace)
		}
		b, terr := rep.Fleet.Trace.Chrome()
		if terr == nil {
			terr = os.WriteFile(*trace, append(b, '\n'), 0o644)
		}
		if terr != nil {
			log.Fatalf("solrollout: -trace %s: %v", *trace, terr)
		}
		fmt.Printf("trace written to %s (%d events)\n", *trace, len(rep.Fleet.Trace.Events))
	}
	if *metrics != "" {
		out := metricsOut{
			Schema:     "sol-metrics",
			Version:    metricsVersion,
			Tool:       "solrollout",
			ElapsedNS:  int64(elapsed),
			EventsPerS: float64(rep.Fleet.Events) / elapsed.Seconds(),
			Report:     rep,
		}
		b, merr := json.MarshalIndent(out, "", "  ")
		if merr == nil {
			merr = os.WriteFile(*metrics, append(b, '\n'), 0o644)
		}
		if merr != nil {
			log.Fatalf("solrollout: -metrics %s: %v", *metrics, merr)
		}
		fmt.Printf("metrics written to %s\n", *metrics)
	}

	switch {
	case *expect == "complete" && !rep.Completed:
		log.Fatalf("solrollout: expected the campaign to complete, but it did not")
	case *expect == "rollback" && !rep.RolledBack:
		log.Fatalf("solrollout: expected the campaign to roll back, but it did not")
	}
}

// fnvHex is the run-configuration fingerprint written to (and checked
// against) a journal header: FNV-64a of the configuration's canonical
// string form, in hex.
func fnvHex(s string) string {
	h := fnv.New64a()
	h.Write([]byte(s))
	return fmt.Sprintf("%016x", h.Sum64())
}
