// Command solfleet simulates a cloud fleet running SOL agents the way
// the paper deploys them: several heterogeneous agents co-located on
// every node, across hundreds of nodes. Each node runs on its own
// deterministic virtual clock; nodes are simulated in parallel on a
// worker pool and the runtime counters are aggregated per agent kind
// into a fleet-operator report.
//
// Usage:
//
//	solfleet                                  # 100 nodes x 3 agents, 60s
//	solfleet -nodes 500 -duration 2m
//	solfleet -agents overclock,harvest,memory,sampler -nodes 250
//	solfleet -workers 4 -seed 9 -detail
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"sol/internal/fleet"
)

func main() {
	var (
		nodes    = flag.Int("nodes", 100, "number of simulated nodes")
		duration = flag.Duration("duration", time.Minute, "simulated horizon per node")
		agents   = flag.String("agents", strings.Join(fleet.StandardKinds, ","),
			"comma-separated agent kinds to co-locate on every node")
		workers = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		seed    = flag.Uint64("seed", 1, "fleet-wide workload seed")
		regions = flag.Int("regions", 128, "tiered-memory regions per node (memory agent)")
		detail  = flag.Bool("detail", false, "print full aggregated runtime counters per kind")
	)
	flag.Parse()

	var kinds []string
	for _, k := range strings.Split(*agents, ",") {
		if k = strings.TrimSpace(k); k != "" {
			kinds = append(kinds, k)
		}
	}
	if len(kinds) == 0 {
		log.Fatalf("solfleet: -agents selects no agent kinds (have %s)", strings.Join(fleet.AllKinds, ", "))
	}
	if *regions < 1 {
		log.Fatalf("solfleet: -regions = %d, must be >= 1", *regions)
	}

	cfg := fleet.Config{
		Nodes:    *nodes,
		Duration: *duration,
		Workers:  *workers,
		Setup: fleet.StandardNode(fleet.StandardNodeConfig{
			Kinds:      kinds,
			Seed:       *seed,
			MemRegions: *regions,
		}),
	}

	fmt.Printf("simulating %d nodes x %d co-located agents (%s) for %v each...\n",
		*nodes, len(kinds), strings.Join(kinds, ", "), *duration)
	wall := time.Now()
	rep, err := fleet.Run(cfg)
	if err != nil {
		log.Fatalf("solfleet: %v", err)
	}
	elapsed := time.Since(wall)

	fmt.Println()
	fmt.Println(rep)
	fmt.Println()
	simulated := time.Duration(*nodes) * *duration
	fmt.Printf("wall time %v: %.0fx real time, %.2fM events (%.2fM events/s)\n",
		elapsed.Round(time.Millisecond),
		simulated.Seconds()/elapsed.Seconds(),
		float64(rep.Events)/1e6,
		float64(rep.Events)/1e6/elapsed.Seconds())

	if *detail {
		for _, kind := range rep.KindNames() {
			fmt.Printf("\n=== %s (aggregated over %d agents) ===\n%s\n",
				kind, rep.Kinds[kind].Agents, rep.Kinds[kind].Stats.String())
		}
	}
}
