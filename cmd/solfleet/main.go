// Command solfleet simulates a cloud fleet running SOL agents the way
// the paper deploys them: several heterogeneous agents co-located on
// every node, across hundreds of nodes. Each node runs on its own
// deterministic virtual clock; nodes are simulated in parallel on a
// worker pool and the runtime counters are aggregated per agent kind
// into a fleet-operator report.
//
// With -shards N the fleet runs on the sharded coordinator instead of
// the streaming batch driver: the nodes are partitioned into N shards
// that free-run independently to the horizon (one barrier each, at the
// end), which keeps every node's state alive for mid-run control and
// is the coordination structure that scales one-process simulation to
// 10k-node fleets. The report is byte-identical either way.
//
// Usage:
//
//	solfleet                                  # 100 nodes x 3 agents, 60s
//	solfleet -nodes 500 -duration 2m
//	solfleet -agents overclock,harvest,memory,sampler -nodes 250
//	solfleet -workers 4 -seed 9 -detail
//	solfleet -nodes 10000 -duration 5s -shards 16
//
// -profile attributes the run's wall time per shard (stepping,
// free-running, align observers, barrier wait — see internal/obs) and
// adds profile: lines to the report; with -shards it also enables
// -tune, which consumes the finished profile to propose per-shard
// worker allotments for the next run (the one sanctioned profile
// feedback — worker widths never change simulation output). -metrics
// writes the full report (+profile) as versioned JSON for BENCH and CI
// to consume.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"sol/internal/fleet"
)

// metricsVersion versions the -metrics envelope; the embedded fleet
// report carries its own wire version besides.
const metricsVersion = 1

// metricsOut is the -metrics export: a versioned envelope around the
// report so CI can validate the schema before trusting the numbers.
//
//sollint:wire metricsVersion
type metricsOut struct {
	Schema     string        `json:"schema"`
	Version    int           `json:"version"`
	Tool       string        `json:"tool"`
	ElapsedNS  int64         `json:"elapsed_ns"`
	EventsPerS float64       `json:"events_per_s"`
	Report     *fleet.Report `json:"report"`
}

// writeTrace exports the run's flight-recorder trace as Chrome Trace
// Event JSON — loadable in Perfetto / chrome://tracing, with the
// versioned sol wire form riding along under the "sol" key.
func writeTrace(path string, rep *fleet.Report) {
	if rep.Trace == nil {
		log.Fatalf("solfleet: -trace %s: the run recorded no trace", path)
	}
	b, err := rep.Trace.Chrome()
	if err == nil {
		err = os.WriteFile(path, append(b, '\n'), 0o644)
	}
	if err != nil {
		log.Fatalf("solfleet: -trace %s: %v", path, err)
	}
	fmt.Printf("trace written to %s (%d events)\n", path, len(rep.Trace.Events))
}

func writeMetrics(path string, v any) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err == nil {
		err = os.WriteFile(path, append(b, '\n'), 0o644)
	}
	if err != nil {
		log.Fatalf("solfleet: -metrics %s: %v", path, err)
	}
	fmt.Printf("metrics written to %s\n", path)
}

func main() {
	var (
		nodes    = flag.Int("nodes", 100, "number of simulated nodes")
		duration = flag.Duration("duration", time.Minute, "simulated horizon per node")
		agents   = flag.String("agents", strings.Join(fleet.StandardKinds, ","),
			"comma-separated agent kinds to co-locate on every node")
		workers = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		shards  = flag.Int("shards", 0,
			"run on the sharded coordinator with this many shards (0 = streaming batch driver)")
		seed    = flag.Uint64("seed", 1, "fleet-wide workload seed")
		regions = flag.Int("regions", 128, "tiered-memory regions per node (memory agent)")
		detail  = flag.Bool("detail", false, "print full aggregated runtime counters per kind")
		profile = flag.Bool("profile", false,
			"attribute wall time per shard (step/free/align/wait) and add profile: lines to the report")
		tune = flag.Bool("tune", false,
			"with -profile -shards: propose busy-time-proportional per-shard worker allotments from the finished profile")
		metrics = flag.String("metrics", "",
			"write the report (+profile) as versioned JSON to this file")
		trace = flag.String("trace", "",
			"record a flight-recorder trace and write it as Chrome Trace Event JSON (Perfetto-loadable) to this file")
	)
	flag.Parse()

	var kinds []string
	for _, k := range strings.Split(*agents, ",") {
		if k = strings.TrimSpace(k); k != "" {
			kinds = append(kinds, k)
		}
	}
	if len(kinds) == 0 {
		log.Fatalf("solfleet: -agents selects no agent kinds (have %s)", strings.Join(fleet.AllKinds, ", "))
	}
	if *regions < 1 {
		log.Fatalf("solfleet: -regions = %d, must be >= 1", *regions)
	}

	if *shards < 0 {
		log.Fatalf("solfleet: -shards = %d, must be >= 0", *shards)
	}
	if *tune && (!*profile || *shards < 1) {
		// Tuning consumes a per-shard profile; the batch driver has no
		// shards to rebalance and an unprofiled run has no evidence.
		log.Fatalf("solfleet: -tune needs -profile and -shards >= 1")
	}
	cfg := fleet.Config{
		Nodes:    *nodes,
		Duration: *duration,
		Workers:  *workers,
		Shards:   *shards,
		Profile:  *profile,
		Trace:    *trace != "",
		Setup: fleet.StandardNode(fleet.StandardNodeConfig{
			Kinds:      kinds,
			Seed:       *seed,
			MemRegions: *regions,
		}),
	}

	shardLabel := ""
	if *shards > 0 {
		shardLabel = fmt.Sprintf(" on %d shard(s)", *shards)
	}
	fmt.Printf("simulating %d nodes x %d co-located agents (%s) for %v each%s...\n",
		*nodes, len(kinds), strings.Join(kinds, ", "), *duration, shardLabel)
	wall := time.Now()
	var rep *fleet.Report
	var co *fleet.Coordinator
	var err error
	if *shards > 0 {
		if co, err = fleet.NewCoordinator(cfg); err == nil {
			co.StepFor(cfg.Duration)
			rep = co.Report()
			co.StopAll()
		}
	} else {
		rep, err = fleet.Run(cfg)
	}
	if err != nil {
		log.Fatalf("solfleet: %v", err)
	}
	elapsed := time.Since(wall)

	fmt.Println()
	fmt.Println(rep)
	fmt.Println()
	simulated := time.Duration(*nodes) * *duration
	fmt.Printf("wall time %v: %.0fx real time, %.2fM events (%.2fM events/s)\n",
		elapsed.Round(time.Millisecond),
		simulated.Seconds()/elapsed.Seconds(),
		float64(rep.Events)/1e6,
		float64(rep.Events)/1e6/elapsed.Seconds())

	if *tune {
		// Rebalance runs strictly after the run: the profile's wall
		// times pick the allotments for a *next* run, never this one.
		allot, rerr := co.Conductor().Rebalance(rep.Profile)
		if rerr != nil {
			log.Fatalf("solfleet: -tune: %v", rerr)
		}
		fmt.Printf("tune: proposed per-shard worker allotments %v (busy-time proportional; rerun with these via shard.Conductor.SetAllotments)\n", allot)
	}
	if *trace != "" {
		writeTrace(*trace, rep)
	}
	if *metrics != "" {
		writeMetrics(*metrics, metricsOut{
			Schema:     "sol-metrics",
			Version:    metricsVersion,
			Tool:       "solfleet",
			ElapsedNS:  int64(elapsed),
			EventsPerS: float64(rep.Events) / elapsed.Seconds(),
			Report:     rep,
		})
	}

	if *detail {
		for _, kind := range rep.KindNames() {
			fmt.Printf("\n=== %s (aggregated over %d agents) ===\n%s\n",
				kind, rep.Kinds[kind].Agents, rep.Kinds[kind].Stats.String())
		}
	}
}
