// Command solfleet simulates a cloud fleet running SOL agents the way
// the paper deploys them: several heterogeneous agents co-located on
// every node, across hundreds of nodes. Each node runs on its own
// deterministic virtual clock; nodes are simulated in parallel on a
// worker pool and the runtime counters are aggregated per agent kind
// into a fleet-operator report.
//
// With -shards N the fleet runs on the sharded coordinator instead of
// the streaming batch driver: the nodes are partitioned into N shards
// that free-run independently to the horizon (one barrier each, at the
// end), which keeps every node's state alive for mid-run control and
// is the coordination structure that scales one-process simulation to
// 10k-node fleets. The report is byte-identical either way.
//
// Usage:
//
//	solfleet                                  # 100 nodes x 3 agents, 60s
//	solfleet -nodes 500 -duration 2m
//	solfleet -agents overclock,harvest,memory,sampler -nodes 250
//	solfleet -workers 4 -seed 9 -detail
//	solfleet -nodes 10000 -duration 5s -shards 16
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"sol/internal/fleet"
)

func main() {
	var (
		nodes    = flag.Int("nodes", 100, "number of simulated nodes")
		duration = flag.Duration("duration", time.Minute, "simulated horizon per node")
		agents   = flag.String("agents", strings.Join(fleet.StandardKinds, ","),
			"comma-separated agent kinds to co-locate on every node")
		workers = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		shards  = flag.Int("shards", 0,
			"run on the sharded coordinator with this many shards (0 = streaming batch driver)")
		seed    = flag.Uint64("seed", 1, "fleet-wide workload seed")
		regions = flag.Int("regions", 128, "tiered-memory regions per node (memory agent)")
		detail  = flag.Bool("detail", false, "print full aggregated runtime counters per kind")
	)
	flag.Parse()

	var kinds []string
	for _, k := range strings.Split(*agents, ",") {
		if k = strings.TrimSpace(k); k != "" {
			kinds = append(kinds, k)
		}
	}
	if len(kinds) == 0 {
		log.Fatalf("solfleet: -agents selects no agent kinds (have %s)", strings.Join(fleet.AllKinds, ", "))
	}
	if *regions < 1 {
		log.Fatalf("solfleet: -regions = %d, must be >= 1", *regions)
	}

	if *shards < 0 {
		log.Fatalf("solfleet: -shards = %d, must be >= 0", *shards)
	}
	cfg := fleet.Config{
		Nodes:    *nodes,
		Duration: *duration,
		Workers:  *workers,
		Shards:   *shards,
		Setup: fleet.StandardNode(fleet.StandardNodeConfig{
			Kinds:      kinds,
			Seed:       *seed,
			MemRegions: *regions,
		}),
	}

	shardLabel := ""
	if *shards > 0 {
		shardLabel = fmt.Sprintf(" on %d shard(s)", *shards)
	}
	fmt.Printf("simulating %d nodes x %d co-located agents (%s) for %v each%s...\n",
		*nodes, len(kinds), strings.Join(kinds, ", "), *duration, shardLabel)
	wall := time.Now()
	var rep *fleet.Report
	var err error
	if *shards > 0 {
		var co *fleet.Coordinator
		if co, err = fleet.NewCoordinator(cfg); err == nil {
			co.StepFor(cfg.Duration)
			rep = co.Report()
			co.StopAll()
		}
	} else {
		rep, err = fleet.Run(cfg)
	}
	if err != nil {
		log.Fatalf("solfleet: %v", err)
	}
	elapsed := time.Since(wall)

	fmt.Println()
	fmt.Println(rep)
	fmt.Println()
	simulated := time.Duration(*nodes) * *duration
	fmt.Printf("wall time %v: %.0fx real time, %.2fM events (%.2fM events/s)\n",
		elapsed.Round(time.Millisecond),
		simulated.Seconds()/elapsed.Seconds(),
		float64(rep.Events)/1e6,
		float64(rep.Events)/1e6/elapsed.Seconds())

	if *detail {
		for _, kind := range rep.KindNames() {
			fmt.Printf("\n=== %s (aggregated over %d agents) ===\n%s\n",
				kind, rep.Kinds[kind].Agents, rep.Kinds[kind].Stats.String())
		}
	}
}
