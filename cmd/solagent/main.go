// Command solagent runs one of the paper's three agents against the
// simulated node and reports what it did — a demonstration daemon for
// the full agent + SOL runtime stack.
//
// Usage:
//
//	solagent -agent overclock -duration 10m
//	solagent -agent harvest   -duration 2m
//	solagent -agent memory    -duration 30m
//
// By default the simulation runs on the virtual clock (instantly);
// -realtime 1x..N attaches the same agent to the wall clock, pacing the
// simulated node in real time (useful for watching safeguards live).
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"sol/internal/agents/harvest"
	"sol/internal/agents/memory"
	"sol/internal/agents/overclock"
	"sol/internal/clock"
	"sol/internal/core"
	"sol/internal/memsim"
	"sol/internal/node"
	"sol/internal/stats"
	"sol/internal/workload"
)

func main() {
	var (
		agent    = flag.String("agent", "overclock", "agent to run: overclock, harvest, memory")
		duration = flag.Duration("duration", 10*time.Minute, "simulated duration")
		report   = flag.Duration("report", time.Minute, "reporting interval (simulated)")
	)
	flag.Parse()

	clk := clock.NewVirtual(time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC))
	var err error
	switch *agent {
	case "overclock":
		err = runOverclock(clk, *duration, *report)
	case "harvest":
		err = runHarvest(clk, *duration, *report)
	case "memory":
		err = runMemory(clk, *duration, *report)
	default:
		err = fmt.Errorf("unknown agent %q", *agent)
	}
	if err != nil {
		log.Fatalf("solagent: %v", err)
	}
}

func runOverclock(clk *clock.Virtual, dur, report time.Duration) error {
	n, err := node.New(clk, node.DefaultConfig())
	if err != nil {
		return err
	}
	syn := workload.NewSynthetic(100*time.Second, 120)
	if _, err := n.AddVM("vm", 4, syn); err != nil {
		return err
	}
	n.Start()
	ag, err := overclock.Launch(clk, n, overclock.DefaultConfig("vm"), core.Options{})
	if err != nil {
		return err
	}
	defer ag.Stop()

	for elapsed := time.Duration(0); elapsed < dur; elapsed += report {
		clk.RunFor(report)
		fmt.Printf("[%6s] freq=%.1fGHz busy=%-5v batches=%d mean-batch=%.1fs energy=%.0fJ model-failing=%v halted=%v\n",
			elapsed+report, n.FrequencyGHz("vm"), syn.Busy(), syn.BatchesDone(),
			syn.MeanBatchSeconds(), n.EnergyJ("vm"),
			ag.Runtime.ModelAssessmentFailing(), ag.Runtime.Halted())
	}
	fmt.Println("\nruntime counters:")
	fmt.Println(ag.Runtime.Stats())
	return nil
}

func runHarvest(clk *clock.Virtual, dur, report time.Duration) error {
	cfg := node.DefaultConfig()
	cfg.TickInterval = 50 * time.Microsecond
	n, err := node.New(clk, cfg)
	if err != nil {
		return err
	}
	tb := workload.NewImageDNN(stats.NewRNG(1), 8, 1.5)
	if _, err := n.AddVM("primary", 8, tb); err != nil {
		return err
	}
	el := workload.NewElastic()
	if _, err := n.AddVM("elastic", 8, el); err != nil {
		return err
	}
	n.SetAvailableCores("elastic", 0)
	n.Start()
	ag, err := harvest.Launch(clk, n, harvest.DefaultConfig("primary", "elastic"), core.Options{})
	if err != nil {
		return err
	}
	defer ag.Stop()

	for elapsed := time.Duration(0); elapsed < dur; elapsed += report {
		clk.RunFor(report)
		waitP90, waitP99 := ag.Actuator.WaitTailMs()
		fmt.Printf("[%6s] grant=%d/8 harvested=%.0f core-s P99=%.1fms wait-p90/p99=%.2f/%.2fms served=%d model-failing=%v halted=%v\n",
			elapsed+report, ag.Actuator.Granted(), el.CoreSeconds(),
			tb.P99LatencySeconds()*1000, waitP90, waitP99, tb.Served(),
			ag.Runtime.ModelAssessmentFailing(), ag.Runtime.Halted())
	}
	fmt.Println("\nruntime counters:")
	fmt.Println(ag.Runtime.Stats())
	return nil
}

func runMemory(clk *clock.Virtual, dur, report time.Duration) error {
	const regions = 256
	tr := workload.NewSQLTrace(regions, 1)
	mem, err := memsim.New(clk, memsim.DefaultConfig(regions), tr)
	if err != nil {
		return err
	}
	mem.Start()
	ag, err := memory.Launch(clk, mem, memory.DefaultConfig(), core.Options{})
	if err != nil {
		return err
	}
	defer ag.Stop()

	prev := mem.Snapshot()
	for elapsed := time.Duration(0); elapsed < dur; elapsed += report {
		clk.RunFor(report)
		cur := mem.Snapshot()
		fmt.Printf("[%6s] tier1=%d/%d remote=%.1f%% scans=%d resets=%.0f migrations=%d model-failing=%v\n",
			elapsed+report, mem.Tier1Regions(), regions,
			100*cur.RemoteFraction(prev), cur.Scans, cur.Resets, cur.Migrations,
			ag.Runtime.ModelAssessmentFailing())
		prev = cur
	}
	fmt.Println("\nruntime counters:")
	fmt.Println(ag.Runtime.Stats())
	return nil
}
