// Command soltaxonomy prints the paper's characterization of
// production on-node agents: Table 1 (the census of 77 Azure node
// agents by class) and Table 2 (published on-node learning agents).
package main

import (
	"fmt"

	"sol/internal/taxonomy"
)

func main() {
	fmt.Println("Table 1: Taxonomy of production agents")
	fmt.Println(taxonomy.RenderTable1())
	fmt.Println("Table 2: Examples of on-node learning resource control agents")
	fmt.Println(taxonomy.RenderTable2())
}
