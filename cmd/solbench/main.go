// Command solbench regenerates the tables and figures of the SOL
// paper's evaluation on the simulated node.
//
// Usage:
//
//	solbench -list
//	solbench -exp fig3
//	solbench -exp fig1,fig7 -quick
//	solbench -exp all
//
// Output rows mirror what each paper table or figure reports;
// EXPERIMENTS.md records the paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sol/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		quick = flag.Bool("quick", false, "run shortened horizons")
		list  = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-18s %s\n", id, experiments.Title(id))
		}
		return
	}

	ids := experiments.IDs()
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
	}
	scale := experiments.Full
	if *quick {
		scale = experiments.Quick
	}

	failed := false
	for _, id := range ids {
		id = strings.TrimSpace(id)
		start := time.Now()
		res, err := experiments.Run(id, scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "solbench: %v\n", err)
			failed = true
			continue
		}
		fmt.Print(res)
		fmt.Printf("(%s wall time)\n\n", time.Since(start).Round(time.Millisecond))
	}
	if failed {
		os.Exit(1)
	}
}
