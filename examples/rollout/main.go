// Rollout example: the fleet control plane catching a bad deployment.
//
// SOL makes one node's learning agent safe; at fleet scale the
// dominant risk is shipping a bad variant to every node at once. The
// control plane applies the same blast-radius discipline one level up:
// variants roll out in health-gated waves over a lockstep fleet, and a
// failed gate rolls the converted cohort back to baseline
// automatically.
//
// This example runs the same 32-node fleet through two campaigns:
//
//  1. A healthy SmartHarvest candidate (one extra core of safety
//     buffer): every wave passes its gate and the rollout completes.
//  2. A botched candidate (no safety buffer, flattened misprediction
//     costs at the fleet's coarse sampling): the canary cohort's
//     safeguards trip during the soak, the first gate fails, the
//     campaign rolls back — and the fleet ends the horizon exactly as
//     healthy as if the campaign had never run.
//
// It then loads manifest.json — a coordinated multi-kind campaign
// declared entirely as data: a bad harvest variant and a benign
// overclock variant convert together, the shared gate catches the bad
// member at the canary, and both kinds roll back as one unit. The same
// manifest runs from the command line:
//
//	go run ./cmd/solrollout -config examples/rollout/manifest.json
//
// Finally it reruns the healthy candidate through a crash storm: 20%
// of the fleet crashes mid-campaign. Without a quorum policy a naive
// gate would read the missing nodes as the variant failing; with one,
// the gate abstains while attendance is low, extends the soak, judges
// the survivors, and the blameless rollout completes — converting
// every node that is still alive.
//
// Run it:
//
//	go run ./examples/rollout
package main

import (
	"fmt"
	"os"
	"time"

	"sol/internal/controlplane"
)

func main() {
	run := func(scenario string) *controlplane.Report {
		cfg, err := controlplane.NewScenario(controlplane.ScenarioSpec{
			Scenario: scenario,
			Nodes:    32,
			Duration: time.Minute,
			Interval: 5 * time.Second,
			Kinds:    []string{"harvest"},
			Seed:     42,
		})
		if err != nil {
			panic(err)
		}
		rep, err := controlplane.Run(cfg)
		if err != nil {
			panic(err)
		}
		return rep
	}

	fmt.Println("--- 1. healthy rollout: every gate passes ---")
	fmt.Println(run(controlplane.ScenarioHealthy))

	fmt.Println("\n--- 2. bad variant: caught at the canary, rolled back ---")
	bad := run(controlplane.ScenarioBadVariant)
	fmt.Println(bad)

	fmt.Printf("\nblast radius: %d of %d nodes ever ran %q; failure class: %s (%s)\n",
		bad.MaxConverted, bad.Nodes, bad.Campaign, bad.Failure, bad.Failure.Describe())

	fmt.Println("\n--- 3. declarative multi-kind campaign from manifest.json ---")
	m, err := controlplane.LoadManifest(manifestPath())
	if err != nil {
		panic(err)
	}
	cfg, err := m.Config()
	if err != nil {
		panic(err)
	}
	rep, err := controlplane.Run(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Println(rep)
	fmt.Printf("\none shared gate rolled back %d kinds together; the manifest is data — store it, diff it, rerun it\n",
		len(rep.Kinds))

	fmt.Println("\n--- 4. crash storm: quorum gate shields a blameless variant ---")
	storm := run(controlplane.ScenarioCrashStorm)
	fmt.Println(storm)
	fmt.Printf("\n%d nodes crashed and stayed down; the gate abstained instead of rolling back, and %d/%d nodes converted (%d unreachable)\n",
		storm.Fleet.Down, storm.Converted, storm.Nodes, storm.Unconverted)
}

// manifestPath finds manifest.json whether the example runs from the
// repository root (go run ./examples/rollout) or its own directory.
func manifestPath() string {
	for _, p := range []string{"examples/rollout/manifest.json", "manifest.json"} {
		if _, err := os.Stat(p); err == nil {
			return p
		}
	}
	return "manifest.json"
}
