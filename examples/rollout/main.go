// Rollout example: the fleet control plane catching a bad deployment.
//
// SOL makes one node's learning agent safe; at fleet scale the
// dominant risk is shipping a bad variant to every node at once. The
// control plane applies the same blast-radius discipline one level up:
// variants roll out in health-gated waves over a lockstep fleet, and a
// failed gate rolls the converted cohort back to baseline
// automatically.
//
// This example runs the same 32-node fleet through two campaigns:
//
//  1. A healthy SmartHarvest candidate (one extra core of safety
//     buffer): every wave passes its gate and the rollout completes.
//  2. A botched candidate (no safety buffer, flattened misprediction
//     costs at the fleet's coarse sampling): the canary cohort's
//     safeguards trip during the soak, the first gate fails, the
//     campaign rolls back — and the fleet ends the horizon exactly as
//     healthy as if the campaign had never run.
//
// Run it:
//
//	go run ./examples/rollout
package main

import (
	"fmt"
	"time"

	"sol/internal/controlplane"
)

func main() {
	run := func(scenario string) *controlplane.Report {
		cfg, err := controlplane.NewScenario(controlplane.ScenarioSpec{
			Scenario: scenario,
			Nodes:    32,
			Duration: time.Minute,
			Interval: 5 * time.Second,
			Kinds:    []string{"harvest"},
			Seed:     42,
		})
		if err != nil {
			panic(err)
		}
		rep, err := controlplane.Run(cfg)
		if err != nil {
			panic(err)
		}
		return rep
	}

	fmt.Println("--- 1. healthy rollout: every gate passes ---")
	fmt.Println(run(controlplane.ScenarioHealthy))

	fmt.Println("\n--- 2. bad variant: caught at the canary, rolled back ---")
	bad := run(controlplane.ScenarioBadVariant)
	fmt.Println(bad)

	fmt.Printf("\nblast radius: %d of %d nodes ever ran %q; failure class: %s (%s)\n",
		bad.MaxConverted, bad.Nodes, bad.Campaign, bad.Failure, bad.Failure.Describe())
}
