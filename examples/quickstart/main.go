// Quickstart: a complete SOL agent in one file.
//
// The agent is a small learning watchdog, one of the agent classes the
// paper identifies as benefiting from on-node learning: it samples a
// noisy node health metric, learns the metric's normal range online
// (mean ± k·stddev), and raises an alert when readings leave that
// range. Every SOL safeguard appears in miniature:
//
//   - ValidateData drops physically impossible readings,
//   - AssessModel refuses to alert off a model that has not seen
//     enough data or whose variance estimate collapsed,
//   - DefaultPredict falls back to "no alert" (the safe action),
//   - AssessPerformance/Mitigate stops an agent that alerts so often
//     it would page a human continuously.
//
// Run it:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math"
	"time"

	"sol"
	"sol/internal/stats"
)

// reading is the collected telemetry (type D).
type reading struct {
	value float64
	at    time.Time
}

// verdict is the prediction (type P): alert or not, with the learned
// bounds for explainability.
type verdict struct {
	alert    bool
	lo, hi   float64
	observed float64
}

// metricSource simulates the monitored node metric: a stable baseline
// with noise, an occasional corrupted reading, and a fault injected
// partway through the run.
type metricSource struct {
	rng     *stats.RNG
	clk     sol.Clock
	faultAt time.Time
}

func (m *metricSource) read() float64 {
	v := 40 + 3*m.rng.NormFloat64() // healthy: ~N(40, 3)
	if m.clk.Now().After(m.faultAt) {
		v += 25 // the incident the watchdog exists to catch
	}
	if m.rng.Bool(0.02) {
		v = -1e9 // corrupted telemetry: must not poison the model
	}
	return v
}

// watchdogModel learns the metric's normal range online.
type watchdogModel struct {
	src    *metricSource
	stats  stats.Welford
	last   float64
	minObs int
}

func (w *watchdogModel) CollectData() (reading, error) {
	return reading{value: w.src.read(), at: w.src.clk.Now()}, nil
}

func (w *watchdogModel) ValidateData(r reading) error {
	if r.value < 0 || r.value > 1000 {
		return fmt.Errorf("reading %.1f outside physical range [0, 1000]", r.value)
	}
	return nil
}

func (w *watchdogModel) CommitData(t time.Time, r reading) {
	w.last = r.value
	w.stats.Add(r.value)
}

func (w *watchdogModel) UpdateModel() {} // Welford updates incrementally in CommitData

func (w *watchdogModel) Predict() (sol.Prediction[verdict], error) {
	lo := w.stats.Mean() - 4*w.stats.StdDev()
	hi := w.stats.Mean() + 4*w.stats.StdDev()
	return sol.Prediction[verdict]{
		Value: verdict{alert: w.last < lo || w.last > hi, lo: lo, hi: hi, observed: w.last},
	}, nil
}

func (w *watchdogModel) DefaultPredict() sol.Prediction[verdict] {
	return sol.Prediction[verdict]{Value: verdict{alert: false}}
}

func (w *watchdogModel) AssessModel() bool {
	// Refuse to alert until the baseline is established, and if the
	// variance estimate degenerates (e.g. a stuck counter).
	return w.stats.Count() >= w.minObs && w.stats.StdDev() > 1e-6
}

// watchdogActuator raises alerts and guards against alert storms.
type watchdogActuator struct {
	alerts      int
	recent      *stats.Window
	muted       bool
	mitigations int
}

func (a *watchdogActuator) TakeAction(p *sol.Prediction[verdict]) {
	fired := 0.0
	if p != nil && p.Value.alert {
		a.alerts++
		fired = 1
		fmt.Printf("  ALERT: metric %.1f outside learned range [%.1f, %.1f]\n",
			p.Value.observed, p.Value.lo, p.Value.hi)
	}
	a.recent.Add(fired)
}

func (a *watchdogActuator) AssessPerformance() bool {
	// Alerting on more than half of recent actions is a storm: the
	// watchdog itself has become the problem.
	return !a.recent.Full() || a.recent.Mean() < 0.5
}

func (a *watchdogActuator) Mitigate() {
	a.mitigations++
	a.muted = true
	fmt.Println("  safeguard: alert storm detected, muting the watchdog")
}

func (a *watchdogActuator) CleanUp() { a.muted = false }

func main() {
	start := time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)
	clk := sol.NewVirtualClock(start)

	src := &metricSource{
		rng:     stats.NewRNG(42),
		clk:     clk,
		faultAt: start.Add(70 * time.Second),
	}
	model := &watchdogModel{src: src, minObs: 50}
	act := &watchdogActuator{recent: stats.NewWindow(20)}

	rt, err := sol.Run[reading, verdict](clk, model, act, sol.Schedule{
		DataPerEpoch:           5,
		DataCollectInterval:    200 * time.Millisecond,
		MaxEpochTime:           2 * time.Second,
		AssessModelEvery:       1,
		MaxActuationDelay:      2 * time.Second,
		AssessActuatorInterval: 5 * time.Second,
		PredictionTTL:          2 * time.Second,
	}, sol.Options{})
	if err != nil {
		panic(err)
	}
	defer rt.Stop()

	fmt.Println("learning the metric's normal range (fault injected at t=70s)...")
	for i := 0; i < 6; i++ {
		clk.RunFor(20 * time.Second)
		st := rt.Stats()
		fmt.Printf("t=%3ds: epochs=%d committed=%d rejected=%d alerts=%d defaults=%d\n",
			(i+1)*20, st.PredictionsIssued, st.DataCommitted, st.DataRejected,
			act.alerts, st.DefaultPredictions)
	}

	st := rt.Stats()
	fmt.Printf("\nsummary: %d corrupted readings rejected, %d alerts raised, %d mitigations\n",
		st.DataRejected, act.alerts, act.mitigations)
	if math.Abs(model.stats.Mean()-40) > 30 {
		fmt.Println("warning: baseline drifted (the fault polluted the model)")
	}
}
