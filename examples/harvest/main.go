// Example: SmartHarvest protecting a latency-critical VM.
//
// A moses-like translation service owns 8 cores but rarely needs them
// all. SmartHarvest loans the idle cores to an elastic batch VM and
// returns them within milliseconds when load surges — and its
// safeguards keep the service's P99 within a few percent of the
// no-harvesting baseline. The example also breaks the model on purpose
// to show the assessment safeguard take over.
//
// Run it:
//
//	go run ./examples/harvest
package main

import (
	"fmt"
	"time"

	"sol/internal/agents/harvest"
	"sol/internal/clock"
	"sol/internal/core"
	"sol/internal/node"
	"sol/internal/stats"
	"sol/internal/workload"
)

func buildNode() (*clock.Virtual, *node.Node, *workload.TailBench, *workload.Elastic) {
	clk := clock.NewVirtual(time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC))
	cfg := node.DefaultConfig()
	cfg.TickInterval = 50 * time.Microsecond
	n := node.MustNew(clk, cfg)
	tb := workload.NewMoses(stats.NewRNG(7), 8, 1.5)
	if _, err := n.AddVM("primary", 8, tb); err != nil {
		panic(err)
	}
	el := workload.NewElastic()
	if _, err := n.AddVM("elastic", 8, el); err != nil {
		panic(err)
	}
	n.SetAvailableCores("elastic", 0)
	n.Start()
	return clk, n, tb, el
}

func main() {
	// Baseline: the service alone with all 8 cores.
	clk, _, tb, _ := buildNode()
	clk.RunFor(60 * time.Second)
	baseP99 := tb.P99LatencySeconds() * 1000
	fmt.Printf("no harvesting:   P99 = %.1f ms (baseline)\n", baseP99)

	// SmartHarvest with all safeguards.
	clk, n, tb, el := buildNode()
	ag, err := harvest.Launch(clk, n, harvest.DefaultConfig("primary", "elastic"), core.Options{})
	if err != nil {
		panic(err)
	}
	clk.RunFor(60 * time.Second)
	p99 := tb.P99LatencySeconds() * 1000
	fmt.Printf("SmartHarvest:    P99 = %.1f ms (%+.1f%%), %0.f core-seconds harvested\n",
		p99, (p99/baseP99-1)*100, el.CoreSeconds())

	// Now break the model: it predicts zero core demand. The model
	// assessment catches the systematic under-prediction and switches
	// to safe defaults.
	fmt.Println("\nbreaking the model (predicts zero core demand)...")
	ag.Model.Break(true)
	clk.RunFor(5 * time.Second)
	fmt.Printf("model assessment failing: %v (safe defaults in use)\n",
		ag.Runtime.ModelAssessmentFailing())
	clk.RunFor(25 * time.Second)
	p99 = tb.P99LatencySeconds() * 1000
	fmt.Printf("with safeguard:  P99 = %.1f ms (%+.1f%%) despite the broken model\n",
		p99, (p99/baseP99-1)*100)

	st := ag.Runtime.Stats()
	fmt.Printf("\nruntime: %d epochs, %d intercepted predictions, %d censored samples discarded\n",
		st.PredictionsIssued, st.PredictionsIntercepted, st.DataRejected)
	ag.Stop()
	fmt.Printf("after CleanUp: primary has %d/8 cores\n", n.AvailableCores("primary"))
}
