// Example: SmartMemory on a two-tier memory node.
//
// A VM's 512 MB of memory (256 regions of 2 MB) serves an OLTP-style
// access pattern. SmartMemory learns per-region access-bit scan rates
// with Thompson sampling, classifies regions hot/warm/cold, and
// offloads the cold tail to the slow second tier while keeping at
// least 80% of accesses local.
//
// Run it:
//
//	go run ./examples/memorytier
package main

import (
	"fmt"
	"time"

	"sol/internal/agents/memory"
	"sol/internal/clock"
	"sol/internal/core"
	"sol/internal/memsim"
	"sol/internal/workload"
)

func main() {
	const regions = 256
	clk := clock.NewVirtual(time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC))
	trace := workload.NewSQLTrace(regions, 7)
	mem, err := memsim.New(clk, memsim.DefaultConfig(regions), trace)
	if err != nil {
		panic(err)
	}
	mem.Start()

	ag, err := memory.Launch(clk, mem, memory.DefaultConfig(), core.Options{})
	if err != nil {
		panic(err)
	}
	defer ag.Stop()

	fmt.Println("SQL OLTP memory trace on 256 x 2MB regions, all local at start")
	fmt.Println()
	prev := mem.Snapshot()
	for minute := 1; minute <= 12; minute++ {
		clk.RunFor(60 * time.Second)
		cur := mem.Snapshot()
		fmt.Printf("t=%2dmin tier1=%3d/256 regions  remote=%4.1f%% of accesses  scans=%6d  coverage=%.2f\n",
			minute, mem.Tier1Regions(), 100*cur.RemoteFraction(prev),
			cur.Scans-prev.Scans, ag.Model.Coverage())
		prev = cur
	}

	snap := mem.Snapshot()
	fmt.Printf("\nfinal: %d/256 regions in DRAM (%.0f%% offloaded), %d migrations, %d mitigations\n",
		mem.Tier1Regions(), 100*float64(regions-mem.Tier1Regions())/regions,
		snap.Migrations, ag.Actuator.Mitigations())
	fmt.Printf("access-bit resets so far: %.0f (each one is a TLB flush the bandit tries to avoid)\n",
		snap.Resets)
}
