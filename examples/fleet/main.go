// Fleet example: SOL agents deployed the way the paper deploys them.
//
// The paper's evaluation (§6) co-locates SmartOverclock, SmartHarvest,
// and SmartMemory on every node of the platform; safety comes from
// each agent's own safeguards, not from central coordination. This
// example builds that shape twice:
//
//  1. One node under a fleet.Supervisor, inspected mid-run: three
//     heterogeneous agents share a clock and a simulated server, and
//     each one's safeguard state is visible through core.Handle.
//  2. A 24-node fleet driven by fleet.Run on a worker pool, with the
//     runtime counters aggregated per agent kind — the operator's
//     rollout dashboard.
//
// Run it:
//
//	go run ./examples/fleet
package main

import (
	"fmt"
	"time"

	"sol/internal/clock"
	"sol/internal/fleet"
)

func main() {
	start := time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)

	// --- 1. One node, three co-located agents, watched live. ---
	fmt.Println("one node, three co-located agents:")
	clk := clock.NewVirtual(start)
	sup, err := fleet.StandardNode(fleet.StandardNodeConfig{Seed: 42})(0, clk)
	if err != nil {
		panic(err)
	}
	for i := 0; i < 4; i++ {
		clk.RunFor(15 * time.Second)
		h := sup.Health()
		fmt.Printf("  t=%2ds: %d agents, %d halted, %d model-failing\n",
			(i+1)*15, h.Members, h.Halted, h.ModelFailing)
	}
	for _, st := range sup.Status() {
		fmt.Printf("  %-10s actions=%-5d on-model=%-5d deadline-floor=%d\n",
			st.Kind, st.Stats.Actions, st.Stats.ActionsOnModel,
			st.DeadlineFloor(60*time.Second))
	}
	sup.StopAll()

	// --- 2. A fleet of such nodes, aggregated per agent kind. ---
	fmt.Println("\na 24-node fleet of the same co-location:")
	rep, err := fleet.Run(fleet.Config{
		Nodes:    24,
		Duration: 30 * time.Second,
		Setup:    fleet.StandardNode(fleet.StandardNodeConfig{Seed: 42}),
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(rep)
}
