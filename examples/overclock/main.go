// Example: SmartOverclock on a phased compute workload.
//
// Reproduces the core Figure 1 story interactively: a VM alternates
// between compute batches and idle; the agent learns to overclock only
// the busy phases, landing near static-overclocking performance at a
// fraction of its power.
//
// Run it:
//
//	go run ./examples/overclock
package main

import (
	"fmt"
	"time"

	"sol/internal/agents/overclock"
	"sol/internal/clock"
	"sol/internal/core"
	"sol/internal/node"
	"sol/internal/workload"
)

func run(policy string, level int) (meanBatch, watts float64) {
	clk := clock.NewVirtual(time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC))
	n := node.MustNew(clk, node.DefaultConfig())
	syn := workload.NewSynthetic(100*time.Second, 120)
	if _, err := n.AddVM("vm", 4, syn); err != nil {
		panic(err)
	}
	n.Start()

	var ag *overclock.Agent
	if level >= 0 {
		if err := n.SetFrequencyLevel("vm", level); err != nil {
			panic(err)
		}
	} else {
		var err error
		ag, err = overclock.Launch(clk, n, overclock.DefaultConfig("vm"), core.Options{})
		if err != nil {
			panic(err)
		}
	}

	clk.RunFor(300 * time.Second) // warmup / learning
	skip := syn.BatchesDone()
	e0, t0 := n.EnergyJ("vm"), clk.Now()
	clk.RunFor(600 * time.Second)
	watts = (n.EnergyJ("vm") - e0) / clk.Now().Sub(t0).Seconds()
	meanBatch = syn.MeanBatchSecondsFrom(skip)
	if ag != nil {
		ag.Stop()
	}
	return meanBatch, watts
}

func main() {
	fmt.Println("Synthetic workload: 120 core·GHz·s batches every 100 s on 4 cores")
	fmt.Println()
	policies := []struct {
		name  string
		level int
	}{
		{"static 1.5 GHz (nominal)", 0},
		{"static 1.9 GHz", 1},
		{"static 2.3 GHz", 2},
		{"SmartOverclock", -1},
	}
	var baseBatch, baseWatts float64
	for _, p := range policies {
		mb, w := run(p.name, p.level)
		if p.level == 0 {
			baseBatch, baseWatts = mb, w
		}
		fmt.Printf("%-26s mean batch %5.1fs (%.2fx speedup)   power %.2fx nominal\n",
			p.name, mb, baseBatch/mb, w/baseWatts)
	}
	fmt.Println()
	fmt.Println("SmartOverclock overclocks the busy phases only: near static-2.3GHz")
	fmt.Println("performance without paying its idle power penalty.")
}
