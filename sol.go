// Package sol is the public facade of the SOL framework — a
// reproduction of "SOL: Safe On-Node Learning in Cloud Platforms"
// (ASPLOS 2022).
//
// SOL is a runtime for building on-node machine-learning agents that
// stay safe under production failure conditions. An agent implements
// two interfaces: Model (collect telemetry, validate it, learn,
// predict) and Actuator (act on predictions, assess end-to-end
// behaviour, mitigate, clean up). The runtime schedules both as
// decoupled control loops, so a throttled or failing model never stops
// the actuator from taking safe actions.
//
// A minimal agent:
//
//	clk := sol.NewVirtualClock(start)     // or sol.NewRealClock()
//	rt, err := sol.Run[MyData, MyPred](clk, myModel, myActuator, sol.Schedule{
//		DataPerEpoch:        10,
//		DataCollectInterval: 100 * time.Millisecond,
//		MaxEpochTime:        1500 * time.Millisecond,
//		AssessModelEvery:    1,
//		MaxActuationDelay:   5 * time.Second,
//	}, sol.Options{})
//	defer rt.Stop() // runs the Actuator's CleanUp
//
// See examples/quickstart for a complete runnable agent, and the
// internal/agents packages for the paper's three production-grade
// agents (SmartOverclock, SmartHarvest, SmartMemory).
package sol

import (
	"time"

	"sol/internal/clock"
	"sol/internal/core"
	"sol/internal/obs"
	"sol/internal/shard"
	"sol/internal/spec"

	// The built-in agent kinds register their spec builders on import,
	// so importing the facade alone makes them resolvable via
	// LaunchSpec / RegisteredKinds.
	_ "sol/internal/agents/harvest"
	_ "sol/internal/agents/memory"
	_ "sol/internal/agents/overclock"
	_ "sol/internal/agents/sampler"
)

// Core API aliases: the facade and internal/core describe the same
// types, so agents written against either compose freely.
type (
	// Model is the learning half of an agent (paper Listing 1).
	Model[D, P any] = core.Model[D, P]
	// Actuator is the control half of an agent (paper Listing 2).
	Actuator[P any] = core.Actuator[P]
	// Prediction is a predicted value with an explicit expiry.
	Prediction[P any] = core.Prediction[P]
	// Schedule carries the timing parameters of both control loops
	// (paper Listing 3).
	Schedule = core.Schedule
	// Options tunes runtime behaviour (safeguard ablation, blocking
	// baseline, fault injection hooks).
	Options = core.Options
	// Runtime is a running agent.
	Runtime[D, P any] = core.Runtime[D, P]
	// Handle is a type-erased running agent, the uniform view
	// supervisors and spec launches return.
	Handle = core.Handle
	// Stats are the runtime's counters.
	Stats = core.Stats
	// EpochInfo summarizes one learning epoch for the OnEpoch hook.
	EpochInfo = core.EpochInfo
	// Clock abstracts time for deterministic simulation and real nodes.
	Clock = clock.Clock
	// VirtualClock is a deterministic discrete-event clock.
	VirtualClock = clock.Virtual
	// Timer is a handle to a scheduled callback — one-shot (AfterFunc)
	// or periodic (Tick) — supporting allocation-free re-arming with
	// Reset.
	Timer = clock.Timer
	// ScheduleViolationHandler is the optional late-model-step callback.
	ScheduleViolationHandler = core.ScheduleViolationHandler

	// AgentSpec is a serializable, declarative agent deployment — the
	// stored/diffable alternative to launching agents in code. Resolve
	// it against a NodeEnv with LaunchSpec.
	AgentSpec = spec.Agent
	// NodeEnv is the per-node environment (clock, substrates, seeds)
	// agent specs resolve against.
	NodeEnv = spec.NodeEnv
	// KindBuilder constructs one registered agent kind from its typed
	// spec params; agent packages implement it and RegisterKind it.
	KindBuilder = spec.Builder

	// ShardConfig partitions a cell-indexed simulation into
	// independently advancing shards driven by a worker budget; the
	// conductor aligns them only at span boundaries. This is the
	// coordination primitive the 10k-node fleet simulator runs on,
	// exposed for custom fleet-scale harnesses.
	ShardConfig = shard.Config
	// ShardConductor owns the shards of one simulation and runs spans.
	ShardConductor = shard.Conductor
	// ShardSpan is one aligned stretch of simulated time: stepped
	// cells advance epoch by epoch under observation, the rest
	// free-run to the next alignment.
	ShardSpan = shard.Span

	// Profile is the conductor's self-profile: per-shard wall-time
	// attribution (stepping vs free-run vs align vs barrier-wait) with
	// deterministic counts and diagnostic-only wall fields. Produced by
	// shard.Conductor.Profile / fleet.Report.Profile when
	// fleet.Config.Profile (or shard.Config.Profile) is set.
	Profile = obs.Profile
	// ShardTimeProfile is one shard's slice of a Profile.
	ShardTimeProfile = obs.ShardProfile
)

// Run starts an agent's Model and Actuator control loops on clk
// (SOL::RunAgent from paper Listing 3).
func Run[D, P any](clk Clock, m Model[D, P], a Actuator[P], s Schedule, o Options) (*Runtime[D, P], error) {
	return core.Run[D, P](clk, m, a, s, o)
}

// MustRun is Run but panics on configuration error.
func MustRun[D, P any](clk Clock, m Model[D, P], a Actuator[P], s Schedule, o Options) *Runtime[D, P] {
	return core.MustRun[D, P](clk, m, a, s, o)
}

// NewVirtualClock returns a deterministic discrete-event clock starting
// at start. Drive it with RunFor/Run/Step.
func NewVirtualClock(start time.Time) *VirtualClock { return clock.NewVirtual(start) }

// NewVirtualClockSingle returns a virtual clock in lock-elided
// single-driver mode: every method must be called from the one
// goroutine that drives it. This is the fast path the fleet simulator
// and the experiments use; prefer it whenever a simulation owns its
// clock outright.
func NewVirtualClockSingle(start time.Time) *VirtualClock { return clock.NewVirtualSingle(start) }

// NewRealClock returns the wall clock, for agents deployed on real
// nodes.
func NewRealClock() Clock { return clock.NewReal() }

// RegisterKind installs a builder for an agent kind, making it
// resolvable from declarative specs (campaign manifests, LaunchSpec).
// The four built-in agents register themselves on import.
func RegisterKind(kind string, b KindBuilder) { spec.Register(kind, b) }

// RegisteredKinds lists the resolvable agent kinds, sorted.
func RegisteredKinds() []string { return spec.Kinds() }

// LaunchSpec resolves a declarative agent spec against the kind
// registry and starts it on env, returning the running agent's handle
// and its actuation deadline (for supervision).
func LaunchSpec(a AgentSpec, env NodeEnv) (core.Handle, time.Duration, error) {
	return spec.Launch(a, env)
}

// NewShardConductor partitions cfg's cells into shards and returns the
// conductor that drives them (see ShardConfig and ShardSpan).
func NewShardConductor(cfg ShardConfig) (*ShardConductor, error) { return shard.New(cfg) }
