package sol

// Integration tests for the public facade: an agent written purely
// against package sol must behave identically to one written against
// internal/core, and the three paper agents must run end to end through
// the same runtime.

import (
	"errors"
	"testing"
	"time"
)

type facadeModel struct {
	clk      Clock
	collects int
	bad      bool
	assessOK bool
}

func (m *facadeModel) CollectData() (float64, error) {
	m.collects++
	if m.bad {
		return -1, nil
	}
	return float64(m.collects), nil
}

func (m *facadeModel) ValidateData(v float64) error {
	if v < 0 {
		return errors.New("negative reading")
	}
	return nil
}

func (m *facadeModel) CommitData(time.Time, float64) {}
func (m *facadeModel) UpdateModel()                  {}

func (m *facadeModel) Predict() (Prediction[string], error) {
	return Prediction[string]{Value: "learned", Expires: m.clk.Now().Add(time.Second)}, nil
}

func (m *facadeModel) DefaultPredict() Prediction[string] {
	return Prediction[string]{Value: "default", Expires: m.clk.Now().Add(time.Second)}
}

func (m *facadeModel) AssessModel() bool { return m.assessOK }

type facadeActuator struct {
	got     []string
	cleaned int
}

func (a *facadeActuator) TakeAction(p *Prediction[string]) {
	if p == nil {
		a.got = append(a.got, "none")
		return
	}
	a.got = append(a.got, p.Value)
}
func (a *facadeActuator) AssessPerformance() bool { return true }
func (a *facadeActuator) Mitigate()               {}
func (a *facadeActuator) CleanUp()                { a.cleaned++ }

func facadeSchedule() Schedule {
	return Schedule{
		DataPerEpoch:           5,
		DataCollectInterval:    10 * time.Millisecond,
		MaxEpochTime:           100 * time.Millisecond,
		AssessModelEvery:       1,
		MaxActuationDelay:      200 * time.Millisecond,
		AssessActuatorInterval: 100 * time.Millisecond,
	}
}

func TestFacadeAgentLifecycle(t *testing.T) {
	start := time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)
	clk := NewVirtualClock(start)
	m := &facadeModel{clk: clk, assessOK: true}
	a := &facadeActuator{}
	rt, err := Run[float64, string](clk, m, a, facadeSchedule(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	clk.RunFor(time.Second)
	rt.Stop()
	rt.Stop()

	if a.cleaned != 1 {
		t.Fatalf("CleanUp ran %d times, want 1", a.cleaned)
	}
	st := rt.Stats()
	if st.PredictionsIssued == 0 || st.Actions == 0 {
		t.Fatalf("facade runtime did nothing: %+v", st)
	}
	sawLearned := false
	for _, g := range a.got {
		if g == "learned" {
			sawLearned = true
		}
	}
	if !sawLearned {
		t.Fatal("actuator never received a learned prediction")
	}
}

func TestFacadeValidationAndInterception(t *testing.T) {
	start := time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)
	clk := NewVirtualClock(start)
	m := &facadeModel{clk: clk, assessOK: false, bad: true}
	a := &facadeActuator{}
	rt, err := Run[float64, string](clk, m, a, facadeSchedule(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	clk.RunFor(time.Second)
	st := rt.Stats()
	if st.DataRejected == 0 {
		t.Fatal("bad data not rejected through the facade")
	}
	if st.EpochShortCircuits == 0 || st.DefaultPredictions == 0 {
		t.Fatalf("epochs did not fall back to defaults: %+v", st)
	}
	for _, g := range a.got {
		if g == "learned" {
			t.Fatal("learned prediction leaked despite all-bad data")
		}
	}
}

func TestFacadeMustRunPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustRun did not panic on zero schedule")
		}
	}()
	clk := NewVirtualClock(time.Unix(0, 0))
	MustRun[float64, string](clk, &facadeModel{clk: clk}, &facadeActuator{}, Schedule{}, Options{})
}

func TestRealClockConstructor(t *testing.T) {
	clk := NewRealClock()
	if clk.Now().IsZero() {
		t.Fatal("real clock returned zero time")
	}
}

// TestFacadeSpecKinds: importing the facade alone must make the
// built-in agent kinds resolvable — external consumers cannot import
// the internal agent packages themselves.
func TestFacadeSpecKinds(t *testing.T) {
	kinds := RegisteredKinds()
	want := map[string]bool{"harvest": false, "memory": false, "overclock": false, "sampler": false}
	for _, k := range kinds {
		if _, ok := want[k]; ok {
			want[k] = true
		}
	}
	for k, seen := range want {
		if !seen {
			t.Fatalf("kind %q not resolvable through the facade (have %v)", k, kinds)
		}
	}
}
