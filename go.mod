module sol

go 1.23
