package sol

// Cross-package integration tests: multiple agents co-resident on one
// simulated node, real-clock operation of the runtime, and the
// operator-facing CleanUp contract the paper requires ("SREs can safely
// terminate and cleanup after misbehaving agents without knowing
// anything about their implementation").

import (
	"sync/atomic"
	"testing"
	"time"

	"sol/internal/agents/harvest"
	"sol/internal/agents/memory"
	"sol/internal/agents/overclock"
	"sol/internal/clock"
	"sol/internal/core"
	"sol/internal/memsim"
	"sol/internal/node"
	"sol/internal/stats"
	"sol/internal/workload"
)

var testEpoch = time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)

// TestCoResidentAgents runs SmartOverclock and SmartHarvest on the same
// node at the same time — different VMs, different knobs, one clock —
// plus SmartMemory on the node's memory. The paper's premise is many
// independent agents per node; they must not interfere through the
// framework.
func TestCoResidentAgents(t *testing.T) {
	clk := clock.NewVirtual(testEpoch)
	ncfg := node.DefaultConfig()
	ncfg.TickInterval = 50 * time.Microsecond // fine enough for harvest
	n := node.MustNew(clk, ncfg)

	// VM 1: compute batches, managed by SmartOverclock.
	syn := workload.NewSynthetic(20*time.Second, 24)
	if _, err := n.AddVM("compute", 4, syn); err != nil {
		t.Fatal(err)
	}
	// VM 2 + elastic: latency-critical service, managed by SmartHarvest.
	tb := workload.NewImageDNN(stats.NewRNG(3), 8, 1.5)
	if _, err := n.AddVM("primary", 8, tb); err != nil {
		t.Fatal(err)
	}
	el := workload.NewElastic()
	if _, err := n.AddVM("elastic", 8, el); err != nil {
		t.Fatal(err)
	}
	n.SetAvailableCores("elastic", 0)
	n.Start()

	// Node memory, managed by SmartMemory.
	trace := workload.NewSQLTrace(128, 5)
	mem := memsim.MustNew(clk, memsim.DefaultConfig(128), trace)
	mem.Start()

	oc, err := overclock.Launch(clk, n, overclock.DefaultConfig("compute"), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer oc.Stop()
	hv, err := harvest.Launch(clk, n, harvest.DefaultConfig("primary", "elastic"), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer hv.Stop()
	mm, err := memory.Launch(clk, mem, memory.DefaultConfig(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer mm.Stop()

	clk.RunFor(90 * time.Second)

	// Every agent made progress.
	if oc.Runtime.Stats().PredictionsIssued == 0 {
		t.Fatal("overclock agent idle")
	}
	if hv.Runtime.Stats().PredictionsIssued == 0 {
		t.Fatal("harvest agent idle")
	}
	if mm.Runtime.Stats().PredictionsIssued == 0 {
		t.Fatal("memory agent idle")
	}
	// SmartOverclock's knob (compute VM frequency) never touched the
	// primary VM, and SmartHarvest's knob never touched the compute VM.
	if n.FrequencyLevel("primary") != 0 {
		t.Fatal("harvest VM's frequency changed by the overclock agent")
	}
	if n.AvailableCores("compute") != 4 {
		t.Fatal("compute VM's cores changed by the harvest agent")
	}
	// Both agents actually did their jobs.
	if syn.BatchesDone() == 0 || el.CoreSeconds() == 0 {
		t.Fatalf("agents took no effect: batches=%d harvested=%.1f",
			syn.BatchesDone(), el.CoreSeconds())
	}
}

// TestOperatorCleanUp exercises the SRE contract: CleanUp is callable
// at any moment, by anyone, repeatedly, regardless of agent state —
// including while the runtime is mid-flight and after Stop.
func TestOperatorCleanUp(t *testing.T) {
	clk := clock.NewVirtual(testEpoch)
	n := node.MustNew(clk, node.DefaultConfig())
	if _, err := n.AddVM("vm", 4, workload.NewDiskSpeed()); err != nil {
		t.Fatal(err)
	}
	n.Start()
	ag, err := overclock.Launch(clk, n, overclock.DefaultConfig("vm"), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	clk.RunFor(10 * time.Second)

	// An SRE calls CleanUp out of band, mid-run, twice.
	n.SetFrequencyLevel("vm", 2)
	ag.Actuator.CleanUp()
	ag.Actuator.CleanUp()
	if n.FrequencyLevel("vm") != 0 {
		t.Fatal("out-of-band CleanUp did not restore nominal")
	}

	// The agent keeps running afterwards (CleanUp is not Stop).
	before := ag.Runtime.Stats().PredictionsIssued
	clk.RunFor(10 * time.Second)
	if ag.Runtime.Stats().PredictionsIssued == before {
		t.Fatal("agent stopped after out-of-band CleanUp")
	}

	ag.Stop()
	ag.Actuator.CleanUp() // still safe after Stop
	if n.FrequencyLevel("vm") != 0 {
		t.Fatal("post-Stop CleanUp broke node state")
	}
}

// realModel is a minimal model for wall-clock smoke testing.
type realModel struct {
	collects atomic.Int64
}

func (m *realModel) CollectData() (int, error) {
	m.collects.Add(1)
	return 1, nil
}
func (m *realModel) ValidateData(int) error    { return nil }
func (m *realModel) CommitData(time.Time, int) {}
func (m *realModel) UpdateModel()              {}
func (m *realModel) Predict() (Prediction[int], error) {
	return Prediction[int]{Value: 7, Expires: time.Now().Add(time.Second)}, nil
}
func (m *realModel) DefaultPredict() Prediction[int] { return Prediction[int]{} }
func (m *realModel) AssessModel() bool               { return true }

type realActuator struct {
	actions atomic.Int64
	cleaned atomic.Int64
}

func (a *realActuator) TakeAction(*Prediction[int]) { a.actions.Add(1) }
func (a *realActuator) AssessPerformance() bool     { return true }
func (a *realActuator) Mitigate()                   {}
func (a *realActuator) CleanUp()                    { a.cleaned.Add(1) }

// TestRealClockRuntime runs the actual runtime on the wall clock for a
// fraction of a second: timer callbacks arrive on arbitrary goroutines,
// so this exercises the runtime's locking for real.
func TestRealClockRuntime(t *testing.T) {
	m := &realModel{}
	a := &realActuator{}
	rt, err := Run[int, int](NewRealClock(), m, a, Schedule{
		DataPerEpoch:           3,
		DataCollectInterval:    5 * time.Millisecond,
		MaxEpochTime:           100 * time.Millisecond,
		AssessModelEvery:       1,
		MaxActuationDelay:      50 * time.Millisecond,
		AssessActuatorInterval: 20 * time.Millisecond,
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for a.actions.Load() < 5 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	rt.Stop()
	if a.actions.Load() < 5 {
		t.Fatalf("real-clock runtime took only %d actions in 5s", a.actions.Load())
	}
	if a.cleaned.Load() != 1 {
		t.Fatalf("CleanUp ran %d times", a.cleaned.Load())
	}
	// No further actions after Stop.
	after := a.actions.Load()
	time.Sleep(150 * time.Millisecond)
	if a.actions.Load() != after {
		t.Fatal("actions continued after Stop on the real clock")
	}
}

// TestDeterminism runs the same co-resident scenario twice and demands
// identical outcomes — the property every experiment relies on.
func TestDeterminism(t *testing.T) {
	runOnce := func() (uint64, float64, int) {
		clk := clock.NewVirtual(testEpoch)
		n := node.MustNew(clk, node.DefaultConfig())
		syn := workload.NewSynthetic(20*time.Second, 24)
		if _, err := n.AddVM("vm", 4, syn); err != nil {
			t.Fatal(err)
		}
		n.Start()
		ag, err := overclock.Launch(clk, n, overclock.DefaultConfig("vm"), core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		clk.RunFor(120 * time.Second)
		st := ag.Runtime.Stats()
		ag.Stop()
		return st.PredictionsIssued, n.EnergyJ("vm"), syn.BatchesDone()
	}
	p1, e1, b1 := runOnce()
	p2, e2, b2 := runOnce()
	if p1 != p2 || e1 != e2 || b1 != b2 {
		t.Fatalf("non-deterministic run: (%d,%v,%d) vs (%d,%v,%d)", p1, e1, b1, p2, e2, b2)
	}
}
