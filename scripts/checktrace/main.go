// checktrace validates -trace exports in CI: each argument must be a
// Chrome Trace Event JSON file produced by solfleet/solrollout -trace,
// carrying the versioned sol wire form under its "sol" key. It checks
// the wire contract (schema name, version gate via obs.ParseTrace) and
// the structural invariants every well-formed trace holds — sim-time
// is monotone non-decreasing within each track, and every track's span
// begin/end events pair up balanced — so a recorder regression fails
// CI loudly instead of shipping an unloadable trace.
package main

import (
	"encoding/json"
	"fmt"
	"os"

	"sol/internal/obs"
)

func check(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	// The export is the Chrome file; the sol envelope rides along under
	// "sol". Re-marshal that subtree through the version gate.
	var file struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
		Sol         json.RawMessage   `json:"sol"`
	}
	if err := json.Unmarshal(raw, &file); err != nil {
		return fmt.Errorf("trace file does not parse: %w", err)
	}
	if len(file.TraceEvents) == 0 {
		return fmt.Errorf("no traceEvents — Perfetto would load an empty view")
	}
	if len(file.Sol) == 0 {
		return fmt.Errorf("no sol envelope riding along")
	}
	tr, err := obs.ParseTrace(file.Sol)
	if err != nil {
		return err
	}
	if tr.Shards < 1 {
		return fmt.Errorf("trace has %d shard tracks, want >= 1", tr.Shards)
	}
	if err := checkTracks(tr); err != nil {
		return err
	}
	fmt.Printf("%s: ok (%d shard tracks, %d events, %d heap samples)\n",
		path, tr.Shards, len(tr.Events), len(tr.Heap))
	return nil
}

// checkTracks verifies per-track monotone sim-time and balanced span
// begin/end pairing. A trace that dropped events (ring overflow) keeps
// the monotonicity check but skips pairing — the drops are
// oldest-first, so a begin can be gone while its end survived.
func checkTracks(tr *obs.Trace) error {
	for track := -1; track < tr.Shards; track++ {
		evs := tr.Track(track)
		last := int64(-1 << 62)
		depth := 0
		for i, ev := range evs {
			if ev.At < last {
				return fmt.Errorf("track %d: sim-time goes backwards at event %d (%s at %dns after %dns)",
					track, i, ev.Kind, ev.At, last)
			}
			last = ev.At
			switch ev.Kind {
			case obs.EvSpanBegin:
				depth++
			case obs.EvSpanEnd:
				depth--
				if depth < 0 && tr.Dropped == 0 {
					return fmt.Errorf("track %d: span end without a begin at event %d (%dns)", track, i, ev.At)
				}
			}
		}
		if depth != 0 && tr.Dropped == 0 {
			return fmt.Errorf("track %d: %d unbalanced span begin/end pairs", track, depth)
		}
	}
	// Heap samples live beside the tracks but follow the same clock.
	last := int64(-1 << 62)
	for i, hs := range tr.Heap {
		if hs.At < last {
			return fmt.Errorf("heap: sim-time goes backwards at sample %d (%dns after %dns)", i, hs.At, last)
		}
		last = hs.At
	}
	return nil
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: checktrace file.json ...")
		os.Exit(2)
	}
	for _, path := range os.Args[1:] {
		if err := check(path); err != nil {
			fmt.Fprintf(os.Stderr, "checktrace: %s: %v\n", path, err)
			os.Exit(1)
		}
	}
}
