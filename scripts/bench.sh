#!/usr/bin/env bash
# bench.sh — run the hot-path and fleet benchmarks and emit a JSON
# snapshot with ns/op, events/s, and allocs/op per benchmark. The
# snapshot records the repo's perf trajectory: each perf PR appends its
# numbers here so regressions are diffable across machines and PRs
# (pair with benchstat for significance testing).
#
# Usage: scripts/bench.sh [output.json]   (default BENCH_PR10.json)
set -euo pipefail
cd "$(dirname "$0")/.."

out=${1:-BENCH_PR10.json}
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

# Microbenchmarks: per-event and per-epoch hot paths.
go test -run '^$' -benchmem \
  -bench 'BenchmarkVirtualClock$|BenchmarkVirtualClockLocked$|BenchmarkVirtualAfterFunc$|BenchmarkRuntimeEpoch$|BenchmarkWindowPercentile$' \
  . | tee "$tmp"
# Fleet benchmarks: whole-system events/s for the batch driver, the
# lockstep (control-plane) driver, and a full rollout campaign —
# closure-built and manifest-driven (spec-resolved) side by side, which
# must be within noise of each other, plus the PR-7 robust-policy twin
# (quorum/retries armed, no faults firing) which must match the plain
# rollout — fault tolerance is free until a fault happens. A few fixed
# iterations keep the run short; each iteration is already a multi-node
# simulation.
go test -run '^$' -benchmem -benchtime=3x \
  -bench 'BenchmarkSupervisorNode$|BenchmarkFleet64$|BenchmarkFleetSerial$|BenchmarkFleetStepped64$|BenchmarkRollout32$|BenchmarkRollout32Profiled$|BenchmarkRollout32Traced$|BenchmarkRollout32Robust$|BenchmarkRolloutManifest32$' \
  . | tee -a "$tmp"
# Sharded coordination: the single-barrier coordinator vs the sharded
# conductor on the same 1k/4k-node canary-observation scenario at equal
# worker budget (the Sharded/Stepped events/s ratio is the structural
# speedup; the PR-5 acceptance bar is >= 1.5x at >= 1k nodes), the
# 10k-node one-process feasibility sweep, and a sharded rollout
# campaign at the control plane's coarse epochs (must stay within noise
# of BenchmarkRollout32).
# The PR-8 self-profiler twins (Fleet4kShardedProfiled, Rollout32-
# Profiled) and the PR-10 flight-recorder twins (Fleet4kShardedTraced,
# Rollout32Traced) run in the same invocation as their plain
# counterparts so both sides share one machine-load window: each twin
# must stay within 2% (noise) of its counterpart — the profiler's
# whole budget is a clock read and a counter add per phase transition,
# the recorder's a zero-allocation ring store per event.
go test -run '^$' -benchmem -benchtime=3x \
  -bench 'BenchmarkFleet1kStepped$|BenchmarkFleet1kSharded$|BenchmarkFleet4kStepped$|BenchmarkFleet4kSharded$|BenchmarkFleet4kShardedProfiled$|BenchmarkFleet4kShardedTraced$|BenchmarkFleet10kSharded$|BenchmarkRollout32Sharded$' \
  . | tee -a "$tmp"

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
BEGIN { print "{"; printf "  \"generated\": \"%s\",\n", date; first = 1 }
/^Benchmark/ {
  name = $1; sub(/-[0-9]+$/, "", name)
  nsop = evs = allocs = ""
  for (i = 2; i < NF; i++) {
    if ($(i+1) == "ns/op") nsop = $i
    else if ($(i+1) == "events/s") evs = $i
    else if ($(i+1) == "allocs/op") allocs = $i
  }
  if (!first) printf ",\n"
  first = 0
  printf "  \"%s\": {\"ns_per_op\": %s, \"events_per_s\": %s, \"allocs_per_op\": %s}", \
    name, (nsop == "" ? "null" : nsop), (evs == "" ? "null" : evs), (allocs == "" ? "null" : allocs)
}
END { print "\n}" }
' "$tmp" > "$out"

echo "wrote $out"
