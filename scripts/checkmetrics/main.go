// checkmetrics validates -metrics exports in CI: each argument must be
// a sol-metrics envelope (schema "sol-metrics", version 1) wrapping a
// versioned report. It checks only the wire contract — schema name,
// versions, and the fields every export carries — so it stays valid as
// reports grow fields, and fails loudly the day the contract breaks.
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

const (
	wantSchema  = "sol-metrics"
	wantVersion = 1
)

// envelope mirrors the producers' metricsOut shape (Report stays raw
// so one checker validates both tools' payloads).
//
//sollint:wire wantVersion
type envelope struct {
	Schema    string          `json:"schema"`
	Version   int             `json:"version"`
	Tool      string          `json:"tool"`
	ElapsedNS int64           `json:"elapsed_ns"`
	Report    json.RawMessage `json:"report"`
}

func check(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var env envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		return fmt.Errorf("envelope does not parse: %w", err)
	}
	if env.Schema != wantSchema {
		return fmt.Errorf("schema %q, want %q", env.Schema, wantSchema)
	}
	if env.Version != wantVersion {
		return fmt.Errorf("envelope version %d, want %d", env.Version, wantVersion)
	}
	if env.Tool == "" {
		return fmt.Errorf("no tool recorded")
	}
	if env.ElapsedNS <= 0 {
		return fmt.Errorf("elapsed_ns = %d, want > 0", env.ElapsedNS)
	}
	var report struct {
		Version int `json:"version"`
		// The rollout export nests the fleet report one level down; the
		// fleet export is the fleet report itself, so Fleet stays nil.
		Fleet *struct {
			Version int `json:"version"`
		} `json:"fleet"`
	}
	if err := json.Unmarshal(env.Report, &report); err != nil {
		return fmt.Errorf("report does not parse: %w", err)
	}
	fleetVersion := report.Version
	if report.Fleet != nil {
		fleetVersion = report.Fleet.Version
	}
	if fleetVersion < 1 {
		return fmt.Errorf("fleet report version %d, want >= 1", fleetVersion)
	}
	fmt.Printf("%s: ok (%s, report %d bytes)\n", path, env.Tool, len(env.Report))
	return nil
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: checkmetrics file.json ...")
		os.Exit(2)
	}
	for _, path := range os.Args[1:] {
		if err := check(path); err != nil {
			fmt.Fprintf(os.Stderr, "checkmetrics: %s: %v\n", path, err)
			os.Exit(1)
		}
	}
}
